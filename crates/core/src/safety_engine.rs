//! Parallel, interned exploration engine for the safety phase.
//!
//! Same Figure 5 construction as [`crate::safety::safety_phase_reference`],
//! re-engineered for throughput:
//!
//! * **Dense pair indices.** A pair `(a, b)` becomes the integer
//!   `a·|B| + b`, so a pair set is a sorted `Vec<u32>` instead of a
//!   `Vec<(usize, StateId)>`. The encoding preserves the canonical
//!   `(hub, b_state)` lexicographic order, so an interned vector
//!   converts back to an equal [`PairSet`] by plain division.
//! * **Precomputed pair-step graph.** The `ok` flag, the closure
//!   successors (internal B-moves plus ψ-tracked `Ext` moves) and the
//!   per-`Int`-event step successors of every pair are computed once up
//!   front. Each `φ` evaluation is then a cheap BFS over integer
//!   adjacency lists with an epoch-stamped seen array — no per-call
//!   hash sets, no `PairSet` clones.
//! * **Hash-consed arena.** Discovered sets are interned in a sharded
//!   arena: 16 mutex-guarded shards, each a `HashMap<Arc<[u32]>, id>`
//!   plus the backing vector of sets. The shard count is fixed (not
//!   tied to the thread count) so per-shard statistics are identical
//!   across runs.
//! * **Sharded frontier.** Worker threads drain a shared work queue;
//!   a pending-state counter provides termination, an atomic abort
//!   flag cuts every worker loose the moment the state budget trips.
//! * **Canonical renumbering.** Workers discover states in a
//!   scheduling-dependent order, so a final breadth-first pass renames
//!   and re-emits everything in BFS discovery order — the exact order
//!   the (FIFO) reference produces. Parallel and sequential runs, at
//!   any thread count, return bit-identical [`SafetyPhase`] values.
//!
//! `tests/safety_differential.rs` checks that equivalence against the
//! reference across every benchmark family at 1, 2 and 8 threads.

use crate::pairset::{h_epsilon, PairSet};
use crate::safety::{SafetyFailure, SafetyLimits, SafetyPhase};
use protoquot_spec::{spec_from_parts, Alphabet, EventId, NormalSpec, Spec, StateId};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use threadpool::ThreadPool;

/// Number of dedup-index shards. Fixed regardless of the thread count
/// so that [`SafetyEngineStats::shard_states`] is deterministic.
pub const NUM_SHARDS: usize = 16;

/// Counters describing one engine run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SafetyEngineStats {
    /// Distinct converter states explored (and kept).
    pub states: usize,
    /// Transitions of the resulting `C0`.
    pub transitions: usize,
    /// Intern calls that found an already-interned pair set.
    pub dedup_hits: usize,
    /// Payload bytes held by the interned-set arena.
    pub arena_bytes: usize,
    /// States interned per dedup shard (length [`NUM_SHARDS`]).
    pub shard_states: Vec<usize>,
    /// Worker threads the run was configured with.
    pub threads: usize,
}

/// A [`SafetyPhase`] plus the engine counters that produced it.
#[derive(Clone, Debug)]
pub struct SafetyEngineOutput {
    /// The safety-phase result, bit-identical to the reference's.
    pub phase: SafetyPhase,
    /// Run statistics.
    pub stats: SafetyEngineStats,
}

/// One shard of the hash-consing index: the map from interned set to
/// exploration id, the backing arena, and its local counters.
#[derive(Default)]
struct Shard {
    map: HashMap<Arc<[u32]>, u32>,
    sets: Vec<Arc<[u32]>>,
    dedup_hits: usize,
    bytes: usize,
}

/// The shared work queue. `pending` counts states discovered but not
/// yet fully expanded; the run is over when it reaches zero.
struct WorkQueue {
    items: VecDeque<(u32, Arc<[u32]>)>,
    pending: usize,
}

/// Everything the workers share: the precomputed pair-step graph, the
/// sharded intern index, the frontier queue and the abort machinery.
struct Shared {
    /// `|hubs| · |B|` — the pair-index space.
    np: usize,
    /// `|B|` — the pair-index stride (pair `(a, b)` is `a·nb + b`).
    nb: usize,
    /// Number of `Int` events.
    ne: usize,
    include_vacuous: bool,
    max_states: usize,
    /// Per pair: does `ok` hold (no `Ext` move leaves ψ undefined)?
    ok: Vec<bool>,
    /// CSR closure adjacency (internal B-moves + tracked `Ext` moves).
    closure_off: Vec<usize>,
    closure_tgt: Vec<u32>,
    /// Per `Int` event, CSR step adjacency (B performing exactly that event).
    step_off: Vec<Vec<usize>>,
    step_tgt: Vec<Vec<u32>>,
    shards: Vec<Mutex<Shard>>,
    queue: Mutex<WorkQueue>,
    work_ready: Condvar,
    abort: AtomicBool,
    state_count: AtomicUsize,
    transitions: Mutex<Vec<(u32, u32, u32)>>,
}

/// FNV-1a over the set's words; picks the dedup shard. Content-based,
/// so the shard assignment of every state is run-independent.
fn shard_of(set: &[u32]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in set {
        h ^= u64::from(w);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % NUM_SHARDS as u64) as usize
}

/// `Ok((exploration id, Some(set) if it is new))`; `Err(())` on budget
/// overrun.
type Interned = Result<(u32, Option<Arc<[u32]>>), ()>;

impl Shared {
    /// Interns `set`. Returns the exploration id plus the `Arc` to push
    /// as a work item when the set is new, or `Err(())` when creating
    /// it would exceed the state budget (the abort flag is raised).
    fn intern(&self, set: Vec<u32>) -> Interned {
        let s = shard_of(&set);
        let mut shard = self.shards[s].lock().unwrap();
        if let Some(&id) = shard.map.get(set.as_slice()) {
            shard.dedup_hits += 1;
            return Ok((id, None));
        }
        if self.state_count.fetch_add(1, Ordering::Relaxed) >= self.max_states {
            self.abort.store(true, Ordering::Relaxed);
            return Err(());
        }
        let id = shard.sets.len() as u32 * NUM_SHARDS as u32 + s as u32;
        shard.bytes += set.len() * std::mem::size_of::<u32>();
        let arc: Arc<[u32]> = set.into();
        shard.map.insert(Arc::clone(&arc), id);
        shard.sets.push(Arc::clone(&arc));
        Ok((id, Some(arc)))
    }
}

/// Per-worker scratch: the epoch-stamped seen array for closure BFS.
struct Scratch {
    seen: Vec<u32>,
    epoch: u32,
}

impl Scratch {
    fn new(np: usize) -> Scratch {
        Scratch {
            seen: vec![0; np],
            epoch: 0,
        }
    }

    fn next_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.seen.fill(0);
            self.epoch = 1;
        }
        self.epoch
    }
}

/// Computes `φ(set, e)` over the precomputed graph: step every pair on
/// event index `ei`, then close. Returns `None` when the result is not
/// `ok` (some reachable pair enables a forbidden `Ext` event), the
/// sorted dense-index set otherwise (empty = vacuous).
fn phi_indexed(shared: &Shared, scratch: &mut Scratch, set: &[u32], ei: usize) -> Option<Vec<u32>> {
    let epoch = scratch.next_epoch();
    let off = &shared.step_off[ei];
    let tgt = &shared.step_tgt[ei];
    let mut out: Vec<u32> = Vec::new();
    let mut stack: Vec<u32> = Vec::new();
    for &p in set {
        for &q in &tgt[off[p as usize]..off[p as usize + 1]] {
            if scratch.seen[q as usize] != epoch {
                scratch.seen[q as usize] = epoch;
                if !shared.ok[q as usize] {
                    return None;
                }
                out.push(q);
                stack.push(q);
            }
        }
    }
    while let Some(q) = stack.pop() {
        let range = shared.closure_off[q as usize]..shared.closure_off[q as usize + 1];
        for &r in &shared.closure_tgt[range] {
            if scratch.seen[r as usize] != epoch {
                scratch.seen[r as usize] = epoch;
                if !shared.ok[r as usize] {
                    return None;
                }
                out.push(r);
                stack.push(r);
            }
        }
    }
    out.sort_unstable();
    Some(out)
}

/// The worker loop: pop a frontier state, expand it on every `Int`
/// event, intern the targets, queue the new ones. Exits when the
/// pending counter drains or the abort flag rises.
fn run_worker(shared: &Shared) {
    let mut scratch = Scratch::new(shared.np);
    let mut local: Vec<(u32, u32, u32)> = Vec::new();
    loop {
        let (id, set) = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if shared.abort.load(Ordering::Relaxed) {
                    q.items.clear();
                    q.pending = 0;
                    shared.work_ready.notify_all();
                    drop(q);
                    shared.transitions.lock().unwrap().append(&mut local);
                    return;
                }
                if let Some(item) = q.items.pop_front() {
                    break item;
                }
                if q.pending == 0 {
                    drop(q);
                    shared.transitions.lock().unwrap().append(&mut local);
                    return;
                }
                q = shared.work_ready.wait(q).unwrap();
            }
        };
        for ei in 0..shared.ne {
            let Some(next) = phi_indexed(shared, &mut scratch, &set, ei) else {
                continue; // not ok: omit the transition
            };
            if next.is_empty() && !shared.include_vacuous {
                continue;
            }
            match shared.intern(next) {
                Ok((tgt, fresh)) => {
                    local.push((id, ei as u32, tgt));
                    if let Some(arc) = fresh {
                        let mut q = shared.queue.lock().unwrap();
                        q.pending += 1;
                        q.items.push_back((tgt, arc));
                        drop(q);
                        shared.work_ready.notify_one();
                    }
                }
                Err(()) => break, // over budget; abort is set
            }
        }
        let mut q = shared.queue.lock().unwrap();
        // Saturating: an aborting worker zeroes `pending` for everyone.
        q.pending = q.pending.saturating_sub(1);
        if q.pending == 0 && q.items.is_empty() {
            shared.work_ready.notify_all();
        }
    }
}

/// Precomputes the pair-step graph and assembles the [`Shared`] state.
fn build_shared(
    b: &Spec,
    na: &NormalSpec,
    int_events: &[EventId],
    ext: &Alphabet,
    include_vacuous: bool,
    limits: SafetyLimits,
) -> Shared {
    let nb = b.num_states();
    let nh = na.num_hubs();
    let np = nh * nb;
    let ne = int_events.len();
    let int_index: HashMap<EventId, usize> = int_events
        .iter()
        .enumerate()
        .map(|(i, &e)| (e, i))
        .collect();

    let mut ok = vec![true; np];
    let mut closure_off = vec![0usize; np + 1];
    let mut closure_tgt: Vec<u32> = Vec::new();
    let mut step_off = vec![vec![0usize; np + 1]; ne];
    let mut step_tgt = vec![Vec::<u32>::new(); ne];

    for hub in 0..nh {
        for bi in 0..nb {
            let p = hub * nb + bi;
            let bs = StateId(bi as u32);
            let start = closure_tgt.len();
            for &t in b.internal_from(bs) {
                closure_tgt.push((hub * nb + t.index()) as u32);
            }
            for &(e, t) in b.external_from(bs) {
                if let Some(&ei) = int_index.get(&e) {
                    step_tgt[ei].push((hub * nb + t.index()) as u32);
                } else if ext.contains(e) {
                    match na.step(hub, e) {
                        Some(h2) => closure_tgt.push((h2 * nb + t.index()) as u32),
                        None => ok[p] = false,
                    }
                }
            }
            if !ok[p] {
                // A bad pair aborts any closure that reaches it; its
                // outgoing edges are never walked.
                closure_tgt.truncate(start);
            }
            closure_off[p + 1] = closure_tgt.len();
            for ei in 0..ne {
                step_off[ei][p + 1] = step_tgt[ei].len();
            }
        }
    }

    Shared {
        np,
        nb,
        ne,
        include_vacuous,
        max_states: limits.max_states,
        ok,
        closure_off,
        closure_tgt,
        step_off,
        step_tgt,
        shards: (0..NUM_SHARDS)
            .map(|_| Mutex::new(Shard::default()))
            .collect(),
        queue: Mutex::new(WorkQueue {
            items: VecDeque::new(),
            pending: 0,
        }),
        work_ready: Condvar::new(),
        abort: AtomicBool::new(false),
        state_count: AtomicUsize::new(0),
        transitions: Mutex::new(Vec::new()),
    }
}

/// Runs the Figure 5 construction with `threads` workers.
///
/// Arguments are as for [`crate::safety::safety_phase`]; the result is
/// bit-identical to [`crate::safety::safety_phase_reference`] at every
/// thread count (state names, transition order, `f` — everything),
/// thanks to the canonical BFS renumbering pass.
///
/// Returns `Err` iff no safe converter exists, `Ok(None)` if the state
/// budget was exceeded.
pub fn safety_engine(
    b: &Spec,
    na: &NormalSpec,
    int: &Alphabet,
    include_vacuous: bool,
    limits: SafetyLimits,
    threads: usize,
) -> Result<Option<SafetyEngineOutput>, SafetyFailure> {
    let threads = threads.max(1);
    let ext = b.alphabet().difference(int);
    // `h.ε` — computed by the same routine the reference uses, so an
    // initial `ok` failure reports the identical violation.
    let h0 = h_epsilon(na, b, &ext).map_err(|violation| SafetyFailure { violation })?;
    // The budget covers every state including `h.ε`: a zero budget
    // admits nothing.
    if limits.max_states == 0 {
        return Ok(None);
    }

    let int_events: Vec<EventId> = int.iter().collect();
    let nb = b.num_states();
    let shared = Arc::new(build_shared(
        b,
        na,
        &int_events,
        &ext,
        include_vacuous,
        limits,
    ));

    let h0_indexed: Vec<u32> = h0
        .iter()
        .map(|(hub, bs)| (hub * nb + bs.index()) as u32)
        .collect();
    let (initial_id, fresh) = shared
        .intern(h0_indexed)
        .expect("budget >= 1 admits the initial state");
    {
        let mut q = shared.queue.lock().unwrap();
        q.pending = 1;
        q.items
            .push_back((initial_id, fresh.expect("first intern is fresh")));
    }

    if threads == 1 {
        run_worker(&shared);
    } else {
        let pool = ThreadPool::new(threads);
        for _ in 0..threads {
            let shared = Arc::clone(&shared);
            pool.execute(move || run_worker(&shared));
        }
        pool.join();
    }

    if shared.abort.load(Ordering::Relaxed) {
        return Ok(None);
    }
    Ok(Some(assemble(
        &shared,
        initial_id,
        int,
        &int_events,
        threads,
    )))
}

/// Canonical BFS renumbering: maps the scheduling-dependent exploration
/// ids onto breadth-first discovery order and emits the [`SafetyPhase`]
/// exactly as the FIFO reference would.
fn assemble(
    shared: &Shared,
    initial_id: u32,
    int: &Alphabet,
    int_events: &[EventId],
    threads: usize,
) -> SafetyEngineOutput {
    let ne = shared.ne;
    let shards: Vec<_> = shared.shards.iter().map(|s| s.lock().unwrap()).collect();
    let n: usize = shards.iter().map(|s| s.sets.len()).sum();
    let max_local = shards.iter().map(|s| s.sets.len()).max().unwrap_or(0);

    // Exploration id -> dense slot, and the per-slot interned set.
    let mut dense_of = vec![u32::MAX; max_local * NUM_SHARDS];
    let mut sets: Vec<&Arc<[u32]>> = Vec::with_capacity(n);
    for (s, shard) in shards.iter().enumerate() {
        for (i, set) in shard.sets.iter().enumerate() {
            dense_of[i * NUM_SHARDS + s] = sets.len() as u32;
            sets.push(set);
        }
    }

    // φ is a function, so each (state, event) has at most one target.
    let raw = shared.transitions.lock().unwrap();
    let mut succ = vec![u32::MAX; n * ne];
    for &(src, ei, tgt) in raw.iter() {
        succ[dense_of[src as usize] as usize * ne + ei as usize] = dense_of[tgt as usize];
    }
    let num_transitions = raw.len();
    drop(raw);

    // BFS from the initial state, events in interface order — the same
    // discovery order as the reference's FIFO worklist.
    let mut new_of = vec![u32::MAX; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let d0 = dense_of[initial_id as usize];
    new_of[d0 as usize] = 0;
    order.push(d0);
    let mut qi = 0;
    while qi < order.len() {
        let d = order[qi] as usize;
        qi += 1;
        for ei in 0..ne {
            let t = succ[d * ne + ei];
            if t != u32::MAX && new_of[t as usize] == u32::MAX {
                new_of[t as usize] = order.len() as u32;
                order.push(t);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "every interned state is reachable");

    let mut names = Vec::with_capacity(n);
    let mut f = Vec::with_capacity(n);
    let mut transitions = Vec::with_capacity(num_transitions);
    let nb = shared.nb as u32;
    for (i, &d) in order.iter().enumerate() {
        names.push(format!("c{i}"));
        f.push(PairSet::from_pairs(
            sets[d as usize]
                .iter()
                .map(|&p| ((p / nb) as usize, StateId(p % nb))),
        ));
        for (ei, &e) in int_events.iter().enumerate() {
            let t = succ[d as usize * ne + ei];
            if t != u32::MAX {
                transitions.push((StateId(i as u32), e, StateId(new_of[t as usize])));
            }
        }
    }

    let stats = SafetyEngineStats {
        states: n,
        transitions: num_transitions,
        dedup_hits: shards.iter().map(|s| s.dedup_hits).sum(),
        arena_bytes: shards.iter().map(|s| s.bytes).sum(),
        shard_states: shards.iter().map(|s| s.sets.len()).collect(),
        threads,
    };
    drop(shards);

    let c0 = spec_from_parts(
        "C0".to_owned(),
        int.clone(),
        names,
        StateId(0),
        transitions,
        Vec::new(),
    )
    .expect("safety engine constructs a valid spec");
    SafetyEngineOutput {
        phase: SafetyPhase {
            c0,
            f,
            includes_vacuous: shared.include_vacuous,
        },
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::safety_phase_reference;
    use protoquot_spec::{normalize, SpecBuilder};

    /// The relay problem from `safety.rs` tests: fwd is safe, dup is not.
    fn relay_problem() -> (Spec, Spec, Alphabet) {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        let service = sb.build().unwrap();
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        let b3 = bb.state("b3");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b2, "del", b0);
        bb.ext(b2, "dup", b3);
        bb.ext(b3, "del", b2);
        let b = bb.build().unwrap();
        (service, b, Alphabet::from_names(["fwd", "dup"]))
    }

    #[test]
    fn engine_matches_reference_bit_for_bit() {
        let (service, b, int) = relay_problem();
        let na = normalize(&service);
        for include_vacuous in [false, true] {
            let reference =
                safety_phase_reference(&b, &na, &int, include_vacuous, SafetyLimits::default())
                    .unwrap()
                    .unwrap();
            for threads in [1, 2, 8] {
                let out = safety_engine(
                    &b,
                    &na,
                    &int,
                    include_vacuous,
                    SafetyLimits::default(),
                    threads,
                )
                .unwrap()
                .unwrap();
                assert_eq!(out.phase.c0, reference.c0, "threads={threads}");
                assert_eq!(out.phase.f, reference.f, "threads={threads}");
                assert_eq!(out.phase.includes_vacuous, reference.includes_vacuous);
            }
        }
    }

    #[test]
    fn stats_are_consistent_and_thread_independent() {
        let (service, b, int) = relay_problem();
        let na = normalize(&service);
        let one = safety_engine(&b, &na, &int, true, SafetyLimits::default(), 1)
            .unwrap()
            .unwrap();
        assert_eq!(one.stats.states, one.phase.c0.num_states());
        assert_eq!(one.stats.transitions, one.phase.c0.num_external());
        assert_eq!(one.stats.shard_states.len(), NUM_SHARDS);
        assert_eq!(
            one.stats.shard_states.iter().sum::<usize>(),
            one.stats.states
        );
        // Every interned pair set but the (possibly empty) vacuous one
        // holds at least one u32.
        assert!(one.stats.arena_bytes >= 4 * (one.stats.states - 1));
        // Each transition is one intern call; all calls beyond the
        // n - 1 that created states were dedup hits.
        assert_eq!(
            one.stats.dedup_hits,
            one.stats.transitions - (one.stats.states - 1)
        );
        for threads in [2, 8] {
            let multi = safety_engine(&b, &na, &int, true, SafetyLimits::default(), threads)
                .unwrap()
                .unwrap();
            assert_eq!(multi.stats.states, one.stats.states);
            assert_eq!(multi.stats.transitions, one.stats.transitions);
            assert_eq!(multi.stats.dedup_hits, one.stats.dedup_hits);
            assert_eq!(multi.stats.arena_bytes, one.stats.arena_bytes);
            assert_eq!(multi.stats.shard_states, one.stats.shard_states);
            assert_eq!(multi.stats.threads, threads);
        }
    }

    #[test]
    fn budget_aborts_at_any_thread_count() {
        let (service, b, int) = relay_problem();
        let na = normalize(&service);
        let n = safety_engine(&b, &na, &int, false, SafetyLimits::default(), 1)
            .unwrap()
            .unwrap()
            .stats
            .states;
        for threads in [1, 2, 8] {
            let exact = safety_engine(
                &b,
                &na,
                &int,
                false,
                SafetyLimits { max_states: n },
                threads,
            )
            .unwrap();
            assert!(exact.is_some(), "threads={threads}");
            let over = safety_engine(
                &b,
                &na,
                &int,
                false,
                SafetyLimits { max_states: n - 1 },
                threads,
            )
            .unwrap();
            assert!(over.is_none(), "threads={threads}");
        }
    }

    #[test]
    fn failure_reports_same_violation_as_reference() {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        let service = sb.build().unwrap();
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        bb.ext(b0, "del", b0);
        bb.event("acc");
        bb.event("m");
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["m"]);
        let na = normalize(&service);
        let engine = safety_engine(&b, &na, &int, false, SafetyLimits::default(), 2).unwrap_err();
        let reference =
            safety_phase_reference(&b, &na, &int, false, SafetyLimits::default()).unwrap_err();
        assert_eq!(engine.violation.event, reference.violation.event);
        assert_eq!(engine.violation.hub, reference.violation.hub);
        assert_eq!(engine.violation.b_state, reference.violation.b_state);
    }
}
