//! The progress phase of the quotient algorithm (paper Figure 6).
//!
//! Iteratively deletes *bad* states from the safety-phase output `C0`.
//! A converter state `c` is bad iff some `(a, b) ∈ f.c` has
//! `¬prog.a.⟨b,c⟩`: the service may be in a sink set none of whose
//! acceptance sets is fully offered (via τ*) by the composite `B ‖ C`
//! at `⟨b, c⟩`. Deleting states shrinks τ* in the composite, so the
//! check repeats until a fixpoint; removing the initial state means no
//! converter exists.
//!
//! τ*⟨b,c⟩ is computed on the `S_B × S_C` product: internal edges are
//! B's λ moves plus `Int`-synchronised moves of B and C (and, for
//! reachability, B's `Ext` moves); the per-node enabled set is
//! `τ.b ∩ Ext` (C has no `Ext` events). The per-node sets propagate
//! over the condensation of the internal graph.
//!
//! ## The incremental engine
//!
//! The fixpoint is driven by an incremental engine instead of a
//! naive re-run of Figure 6's recompute step:
//!
//! * The product graph is built **once**, in CSR (compressed sparse
//!   row) form, forward and reverse, using event-indexed B-transition
//!   tables — no hash lookups and no per-iteration adjacency
//!   allocation. An edge is *active* iff the converter states of both
//!   endpoints are still alive, so deletion never rewrites the graph.
//! * τ* is kept per product node, derived from per-SCC masks. After a
//!   deletion round only the **backward slice** — the product nodes
//!   that could reach a deleted node over the previous graph, found by
//!   a worklist over the reverse CSR — can change, and Tarjan runs on
//!   that slice alone, reading the cached τ* of untouched neighbours
//!   as boundary constants. τ* only ever shrinks, so cached values
//!   outside the slice stay exact.
//! * Only converter states watching a recomputed product node are
//!   re-checked for badness; everything else is provably unchanged.
//! * `Ext` sets are `u64` masks when at most 64 external events exist
//!   (the common case, allocation-free), and dynamic `u64`-word
//!   bit-vectors beyond that — the engine is generic over the mask
//!   representation, so wide alphabets no longer panic.
//!
//! The pre-incremental implementation is retained as
//! [`progress_phase_reference_with`] so equivalence is *tested* (see
//! `tests/progress_differential.rs`), not assumed.
//!
//! ## Strategies
//!
//! * [`ProgressStrategy::FullProduct`] — the paper's Figure 6 verbatim:
//!   every `(a, b) ∈ f.c` is checked, with τ* computed over the whole
//!   product (the definition is forward-looking, so this is always
//!   well-defined).
//! * [`ProgressStrategy::ReachableProduct`] — an ablation this
//!   implementation adds: as deletions make parts of the composite
//!   unreachable, pairs whose product node can no longer occur are
//!   *skipped* rather than checked against stale τ* values. This is a
//!   sound refinement — unreachable states cannot cause a violation —
//!   and can only keep **more** converter behaviour than Figure 6
//!   (every output still passes independent verification; see the
//!   tests and `tests/properties.rs`).

use crate::safety::SafetyPhase;
use protoquot_spec::{prune_unreachable, Alphabet, EventId, NormalSpec, Spec, StateId};
use std::collections::HashMap;

/// How the fixpoint treats pairs made unreachable by earlier deletions
/// (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProgressStrategy {
    /// The paper's Figure 6, verbatim.
    #[default]
    FullProduct,
    /// Skip pairs whose composite state has become unreachable.
    ReachableProduct,
}

/// A concrete explanation of the *first* bad state found: after the
/// converter trace `trace`, the components may be in `b_state` with the
/// service at hub `hub`; the composite can then only ever offer
/// `offered`, which covers none of the service's acceptance sets
/// `needed`.
#[derive(Clone, Debug)]
pub struct ProgressWitness {
    /// The bad converter state (index in `C0`).
    pub state: StateId,
    /// A converter trace (over `Int`) reaching it.
    pub trace: Vec<EventId>,
    /// The failing pair's service hub.
    pub hub: usize,
    /// The failing pair's B-state.
    pub b_state: StateId,
    /// A's sink acceptance sets at the hub.
    pub needed: Vec<Alphabet>,
    /// τ* of the composite at `(b_state, state)`.
    pub offered: Alphabet,
}

/// Work counters from the incremental fixpoint engine, per
/// [`progress_phase_with`] run. All counts are in product nodes
/// (`|S_B| × |S_C0|` is the full product).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgressEngineStats {
    /// Product nodes (`nb * nc`).
    pub product_nodes: usize,
    /// Internal + Int-synchronised product edges in the CSR graph.
    pub product_edges: usize,
    /// τ*-recompute set size per iteration: the full product on the
    /// first iteration, the backward slice of the deletions afterwards.
    pub slice_sizes: Vec<usize>,
    /// Total product nodes whose τ* was recomputed, summed over all
    /// iterations (= sum of `slice_sizes`).
    pub nodes_touched: usize,
    /// Number of τ* recompute passes actually run (iterations whose
    /// slice was non-empty).
    pub tau_star_recomputations: usize,
}

/// Outcome of the progress phase.
#[derive(Clone, Debug)]
pub struct ProgressPhase {
    /// The converter, if one survives (reachable states only).
    pub converter: Option<Spec>,
    /// Number of remove-and-recompute iterations performed.
    pub iterations: usize,
    /// Converter states removed as bad (cumulative, before the final
    /// reachability prune).
    pub removed: usize,
    /// Why the first bad state was bad (useful when the phase empties
    /// the converter); `None` if nothing was ever removed.
    pub first_witness: Option<ProgressWitness>,
    /// Incremental-engine work counters (all zero from the reference
    /// engine, which predates them).
    pub stats: ProgressEngineStats,
}

/// Runs the Figure 6 fixpoint (paper-exact strategy).
pub fn progress_phase(b: &Spec, na: &NormalSpec, safety: &SafetyPhase) -> ProgressPhase {
    progress_phase_with(b, na, safety, ProgressStrategy::FullProduct)
}

/// Runs the progress fixpoint with an explicit strategy, via the
/// incremental engine.
pub fn progress_phase_with(
    b: &Spec,
    na: &NormalSpec,
    safety: &SafetyPhase,
    strategy: ProgressStrategy,
) -> ProgressPhase {
    let ext = b.alphabet().difference(safety.c0.alphabet());
    let ext_bits = ExtBits::new(&ext);
    if ext_bits.len() <= 64 {
        Engine::<u64>::new(b, na, safety, &ext_bits).run(b, na, safety, strategy, &ext_bits)
    } else {
        Engine::<WideMask>::new(b, na, safety, &ext_bits).run(b, na, safety, strategy, &ext_bits)
    }
}

// ---------------------------------------------------------------------------
// Ext masks: u64 fast path + dynamic wide bit-vectors.
// ---------------------------------------------------------------------------

/// Maps an `Ext` alphabet to bit positions. Alphabets of ≤ 64 events
/// use plain `u64` masks; larger alphabets use [`WideMask`].
struct ExtBits {
    bit: HashMap<EventId, u32>,
    events: Vec<EventId>,
}

impl ExtBits {
    fn new(ext: &Alphabet) -> ExtBits {
        ExtBits {
            bit: ext.iter().zip(0u32..).collect(),
            events: ext.iter().collect(),
        }
    }

    fn len(&self) -> usize {
        self.events.len()
    }

    /// `u64` words needed for a wide mask.
    fn words(&self) -> usize {
        self.len().div_ceil(64).max(1)
    }

    /// Mask of the events of `a` that are in `Ext` (≤ 64 events only).
    fn mask(&self, a: &Alphabet) -> u64 {
        a.iter()
            .filter_map(|e| self.bit.get(&e))
            .fold(0u64, |m, &b| m | (1 << b))
    }

    /// Inverse of [`mask`](Self::mask).
    fn unmask(&self, m: u64) -> Alphabet {
        self.events
            .iter()
            .enumerate()
            .filter(|&(i, _)| m & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect()
    }
}

/// A set of `Ext` events, abstracted over representation so the engine
/// compiles to raw `u64` ops in the common case.
trait ExtMask: Clone {
    fn from_alphabet(bits: &ExtBits, a: &Alphabet) -> Self;
    fn to_alphabet(&self, bits: &ExtBits) -> Alphabet;
    fn union_with(&mut self, other: &Self);
    /// `req ⊆ self`.
    fn covers(&self, req: &Self) -> bool;
}

impl ExtMask for u64 {
    fn from_alphabet(bits: &ExtBits, a: &Alphabet) -> u64 {
        bits.mask(a)
    }

    fn to_alphabet(&self, bits: &ExtBits) -> Alphabet {
        bits.unmask(*self)
    }

    fn union_with(&mut self, other: &u64) {
        *self |= other;
    }

    fn covers(&self, req: &u64) -> bool {
        req & !self == 0
    }
}

/// Dynamic bit-vector for `Ext` alphabets beyond 64 events.
#[derive(Clone, Debug, PartialEq, Eq)]
struct WideMask(Box<[u64]>);

impl ExtMask for WideMask {
    fn from_alphabet(bits: &ExtBits, a: &Alphabet) -> WideMask {
        let mut words = vec![0u64; bits.words()];
        for e in a.iter() {
            if let Some(&b) = bits.bit.get(&e) {
                words[(b / 64) as usize] |= 1 << (b % 64);
            }
        }
        WideMask(words.into_boxed_slice())
    }

    fn to_alphabet(&self, bits: &ExtBits) -> Alphabet {
        bits.events
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.0[i / 64] & (1 << (i % 64)) != 0)
            .map(|(_, &e)| e)
            .collect()
    }

    fn union_with(&mut self, other: &WideMask) {
        for (w, o) in self.0.iter_mut().zip(other.0.iter()) {
            *w |= o;
        }
    }

    fn covers(&self, req: &WideMask) -> bool {
        req.0.iter().zip(self.0.iter()).all(|(r, s)| r & !s == 0)
    }
}

// ---------------------------------------------------------------------------
// The incremental engine.
// ---------------------------------------------------------------------------

/// Incremental τ* fixpoint over the `S_B × S_C0` product.
///
/// Node encoding: `node(bs, cs) = bs * nc + cs`. The CSR edge lists
/// are built once over *all* converter states; an edge is active iff
/// the converter states of both its endpoints are alive (B-internal
/// edges keep `cs`, so only one check is ever needed per edge).
struct Engine<M> {
    nb: usize,
    nc: usize,
    nn: usize,
    // Forward and reverse product CSR (internal + Int-synchronised).
    fwd_off: Vec<u32>,
    fwd_dst: Vec<u32>,
    rev_off: Vec<u32>,
    rev_dst: Vec<u32>,
    // Per-B-state Ext successors (CSR over B states), for the
    // reachable-product forward closure.
    ext_off: Vec<u32>,
    ext_dst: Vec<u32>,
    /// `τ.b ∩ Ext` per B-state.
    local: Vec<M>,
    /// Current τ* per product node (exact for every alive node).
    tau: Vec<M>,
    /// Per-hub acceptance sets as masks.
    acceptance: Vec<Vec<M>>,
    /// Product nodes some converter state's pair set watches.
    watched: Vec<bool>,
    /// Liveness per converter state.
    alive: Vec<bool>,
    // Scratch, allocated once (epoch-stamped where cheap to reset).
    epoch: u32,
    in_set: Vec<u32>,
    mark: Vec<u32>,
    visited: Vec<u32>,
    order: Vec<u32>,
    low: Vec<u32>,
    on_stack: Vec<bool>,
    scc_of: Vec<u32>,
    base: Vec<M>,
    tarjan_call: Vec<(u32, u32)>,
    tarjan_stack: Vec<u32>,
    scc_members: Vec<u32>,
    scc_starts: Vec<u32>,
    scc_masks: Vec<M>,
    queue: Vec<u32>,
    dirty: Vec<u32>,
    stats: ProgressEngineStats,
}

impl<M: ExtMask> Engine<M> {
    fn new(b: &Spec, na: &NormalSpec, safety: &SafetyPhase, ext_bits: &ExtBits) -> Engine<M> {
        let ext = b.alphabet().difference(safety.c0.alphabet());
        let nb = b.num_states();
        let nc = safety.c0.num_states();
        let nn = nb
            .checked_mul(nc)
            .filter(|&n| n < u32::MAX as usize)
            .expect("product graph exceeds u32 node space");
        let node = |bs: usize, cs: usize| (bs * nc + cs) as u32;

        // Event-indexed B-transition tables (Int events) and per-state
        // Ext adjacency.
        let mut max_event = 0usize;
        for (_, e, _) in b.external_transitions() {
            max_event = max_event.max(e.index());
        }
        let mut b_by_event: Vec<Vec<(u32, u32)>> = vec![Vec::new(); max_event + 1];
        let mut ext_adj: Vec<Vec<u32>> = vec![Vec::new(); nb];
        for (s, e, t) in b.external_transitions() {
            if ext.contains(e) {
                ext_adj[s.index()].push(t.index() as u32);
            } else {
                b_by_event[e.index()].push((s.index() as u32, t.index() as u32));
            }
        }
        let mut ext_off = Vec::with_capacity(nb + 1);
        let mut ext_dst = Vec::new();
        ext_off.push(0u32);
        for targets in &ext_adj {
            ext_dst.extend_from_slice(targets);
            ext_off.push(ext_dst.len() as u32);
        }

        // Product edges: B's λ moves replicated over every converter
        // state, plus Int-synchronised moves of B and C0.
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for bs in b.states() {
            for &tb in b.internal_from(bs) {
                for cs in 0..nc {
                    edges.push((node(bs.index(), cs), node(tb.index(), cs)));
                }
            }
        }
        for (cs, e, ct) in safety.c0.external_transitions() {
            for &(bs, bt) in &b_by_event[e.index()] {
                edges.push((
                    bs * nc as u32 + cs.index() as u32,
                    bt * nc as u32 + ct.index() as u32,
                ));
            }
        }
        let (fwd_off, fwd_dst) = build_csr(nn, edges.iter().copied());
        let (rev_off, rev_dst) = build_csr(nn, edges.iter().map(|&(s, t)| (t, s)));
        let product_edges = fwd_dst.len();

        let local: Vec<M> = b
            .states()
            .map(|s| M::from_alphabet(ext_bits, &b.tau(s)))
            .collect();
        let tau: Vec<M> = (0..nn).map(|n| local[n / nc].clone()).collect();
        let base = tau.clone();
        let acceptance: Vec<Vec<M>> = (0..na.num_hubs())
            .map(|h| {
                na.acceptance(h)
                    .iter()
                    .map(|a| M::from_alphabet(ext_bits, a))
                    .collect()
            })
            .collect();
        let mut watched = vec![false; nn];
        for cs in 0..nc {
            for (_, bs) in safety.f[cs].iter() {
                watched[bs.index() * nc + cs] = true;
            }
        }

        Engine {
            nb,
            nc,
            nn,
            fwd_off,
            fwd_dst,
            rev_off,
            rev_dst,
            ext_off,
            ext_dst,
            local,
            tau,
            acceptance,
            watched,
            alive: vec![true; nc],
            epoch: 0,
            in_set: vec![0; nn],
            mark: vec![0; nn],
            visited: vec![0; nn],
            order: vec![0; nn],
            low: vec![0; nn],
            on_stack: vec![false; nn],
            scc_of: vec![0; nn],
            base,
            tarjan_call: Vec::new(),
            tarjan_stack: Vec::new(),
            scc_members: Vec::new(),
            scc_starts: Vec::new(),
            scc_masks: Vec::new(),
            queue: Vec::new(),
            dirty: Vec::new(),
            stats: ProgressEngineStats {
                product_nodes: nn,
                product_edges,
                ..ProgressEngineStats::default()
            },
        }
    }

    /// Recomputes τ* for the node set stamped `in_set == epoch`
    /// (provided as a list): Tarjan over the induced subgraph of
    /// active edges, reading cached τ* of out-of-set active successors
    /// as boundary constants. SCCs are emitted in reverse topological
    /// order, so one ascending pass over per-SCC masks folds in all
    /// cross-SCC reachability.
    fn recompute(&mut self, set: &[u32]) {
        self.stats.nodes_touched += set.len();
        self.stats.tau_star_recomputations += 1;
        let epoch = self.epoch;
        for &v in set {
            debug_assert_eq!(self.in_set[v as usize], epoch);
            self.base[v as usize] = self.local[v as usize / self.nc].clone();
        }
        self.tarjan_call.clear();
        self.tarjan_stack.clear();
        self.scc_members.clear();
        self.scc_starts.clear();
        self.scc_masks.clear();
        let mut next_index = 0u32;
        let mut num_sccs = 0u32;

        for &root in set {
            if self.visited[root as usize] == epoch {
                continue;
            }
            self.visited[root as usize] = epoch;
            self.order[root as usize] = next_index;
            self.low[root as usize] = next_index;
            next_index += 1;
            self.tarjan_stack.push(root);
            self.on_stack[root as usize] = true;
            self.tarjan_call.push((root, self.fwd_off[root as usize]));

            while let Some(&(v, cursor)) = self.tarjan_call.last() {
                let v_us = v as usize;
                if cursor < self.fwd_off[v_us + 1] {
                    self.tarjan_call.last_mut().unwrap().1 += 1;
                    let w = self.fwd_dst[cursor as usize];
                    let w_us = w as usize;
                    if !self.alive[w_us % self.nc] {
                        continue; // inactive edge
                    }
                    if self.in_set[w_us] != epoch {
                        // Boundary: w's τ* is cached and final.
                        let (base, tau) = (&mut self.base, &self.tau);
                        base[v_us].union_with(&tau[w_us]);
                    } else if self.visited[w_us] != epoch {
                        self.visited[w_us] = epoch;
                        self.order[w_us] = next_index;
                        self.low[w_us] = next_index;
                        next_index += 1;
                        self.tarjan_stack.push(w);
                        self.on_stack[w_us] = true;
                        self.tarjan_call.push((w, self.fwd_off[w_us]));
                    } else if self.on_stack[w_us] {
                        self.low[v_us] = self.low[v_us].min(self.order[w_us]);
                    }
                } else {
                    if self.low[v_us] == self.order[v_us] {
                        self.scc_starts.push(self.scc_members.len() as u32);
                        loop {
                            let w = self.tarjan_stack.pop().unwrap();
                            self.on_stack[w as usize] = false;
                            self.scc_of[w as usize] = num_sccs;
                            self.scc_members.push(w);
                            if w == v {
                                break;
                            }
                        }
                        num_sccs += 1;
                    }
                    self.tarjan_call.pop();
                    if let Some(&(parent, _)) = self.tarjan_call.last() {
                        let p = parent as usize;
                        self.low[p] = self.low[p].min(self.low[v_us]);
                    }
                }
            }
        }

        // Ascending pass: cross-SCC edges always point to an
        // earlier-emitted SCC, whose mask is already final.
        for k in 0..num_sccs as usize {
            let start = self.scc_starts[k] as usize;
            let end = self
                .scc_starts
                .get(k + 1)
                .map_or(self.scc_members.len(), |&s| s as usize);
            let mut mask = self.base[self.scc_members[start] as usize].clone();
            for &v in &self.scc_members[start + 1..end] {
                mask.union_with(&self.base[v as usize]);
            }
            for i in start..end {
                let v = self.scc_members[i] as usize;
                for ei in self.fwd_off[v]..self.fwd_off[v + 1] {
                    let w = self.fwd_dst[ei as usize] as usize;
                    if !self.alive[w % self.nc] || self.in_set[w] != epoch {
                        continue;
                    }
                    let kw = self.scc_of[w] as usize;
                    if kw != k {
                        debug_assert!(kw < k, "cross edge into a later SCC");
                        mask.union_with(&self.scc_masks[kw]);
                    }
                }
            }
            self.scc_masks.push(mask);
        }
        for &v in set {
            self.tau[v as usize] = self.scc_masks[self.scc_of[v as usize] as usize].clone();
        }
    }

    /// Backward slice: every still-alive product node that could reach
    /// a node of a just-removed converter state over the *previous*
    /// (pre-removal) active graph. Fills `self.dirty` and stamps the
    /// members with `in_set = self.epoch` (callers bump the epoch
    /// first).
    fn backward_slice(&mut self, removed_cs: &[usize], just_removed: &[bool]) {
        let epoch = self.epoch;
        self.queue.clear();
        self.dirty.clear();
        for &cs in removed_cs {
            for bs in 0..self.nb {
                let n = (bs * self.nc + cs) as u32;
                self.mark[n as usize] = epoch;
                self.queue.push(n);
            }
        }
        while let Some(n) = self.queue.pop() {
            let n_us = n as usize;
            for ei in self.rev_off[n_us]..self.rev_off[n_us + 1] {
                let p = self.rev_dst[ei as usize];
                let p_us = p as usize;
                if self.mark[p_us] == epoch {
                    continue;
                }
                let pcs = p_us % self.nc;
                // The edge had to be active before this round's
                // removals for p's τ* to have depended on it.
                if !(self.alive[pcs] || just_removed[pcs]) {
                    continue;
                }
                self.mark[p_us] = epoch;
                self.queue.push(p);
                if self.alive[pcs] {
                    self.in_set[p_us] = epoch;
                    self.dirty.push(p);
                }
            }
        }
    }

    /// Forward closure from the initial composite state over active
    /// product edges plus B's Ext moves (which keep the converter
    /// state fixed). Marks members with `mark = self.epoch`.
    fn forward_reachable(&mut self, start: u32) {
        let epoch = self.epoch;
        self.queue.clear();
        self.mark[start as usize] = epoch;
        self.queue.push(start);
        while let Some(n) = self.queue.pop() {
            let n_us = n as usize;
            let (bs, cs) = (n_us / self.nc, n_us % self.nc);
            for ei in self.fwd_off[n_us]..self.fwd_off[n_us + 1] {
                let w = self.fwd_dst[ei as usize];
                if self.alive[w as usize % self.nc] && self.mark[w as usize] != epoch {
                    self.mark[w as usize] = epoch;
                    self.queue.push(w);
                }
            }
            for ei in self.ext_off[bs]..self.ext_off[bs + 1] {
                let bt = self.ext_dst[ei as usize] as usize;
                let m = (bt * self.nc + cs) as u32;
                if self.mark[m as usize] != epoch {
                    self.mark[m as usize] = epoch;
                    self.queue.push(m);
                }
            }
        }
    }

    /// The remove-and-recompute fixpoint (Figure 6).
    fn run(
        mut self,
        b: &Spec,
        na: &NormalSpec,
        safety: &SafetyPhase,
        strategy: ProgressStrategy,
        ext_bits: &ExtBits,
    ) -> ProgressPhase {
        let nc = self.nc;
        let c0_initial = safety.c0.initial().index();
        let start_node = (b.initial().index() * nc + c0_initial) as u32;
        let mut iterations = 0usize;
        let mut removed = 0usize;
        let mut first_witness: Option<ProgressWitness> = None;
        let mut removed_cs: Vec<usize> = Vec::new();
        let mut just_removed = vec![false; nc];
        let mut recheck = vec![false; nc];

        loop {
            iterations += 1;
            // 1. (Re)compute τ* — full product on the first pass, the
            //    backward slice of last round's deletions afterwards.
            if iterations == 1 {
                self.epoch += 1;
                let all_nodes: Vec<u32> = (0..self.nn as u32).collect();
                for &n in &all_nodes {
                    self.in_set[n as usize] = self.epoch;
                }
                self.stats.slice_sizes.push(all_nodes.len());
                self.recompute(&all_nodes);
                recheck.fill(true);
            } else {
                self.epoch += 1;
                self.backward_slice(&removed_cs, &just_removed);
                let dirty = std::mem::take(&mut self.dirty);
                self.stats.slice_sizes.push(dirty.len());
                recheck.fill(false);
                for &n in &dirty {
                    if self.watched[n as usize] {
                        recheck[n as usize % nc] = true;
                    }
                }
                if !dirty.is_empty() {
                    self.recompute(&dirty);
                }
                self.dirty = dirty;
                for &cs in &removed_cs {
                    just_removed[cs] = false;
                }
            }
            removed_cs.clear();

            // 2. Reachability, only when the strategy skips
            //    unreachable pairs and something needs re-checking.
            let mut reach_epoch = 0u32;
            if strategy == ProgressStrategy::ReachableProduct && recheck.iter().any(|&r| r) {
                self.epoch += 1;
                reach_epoch = self.epoch;
                self.forward_reachable(start_node);
            }

            // 3. Re-check watching states, ascending, matching the
            //    reference scan order exactly.
            let mut any_bad = false;
            for cs in 0..nc {
                if !recheck[cs] || !self.alive[cs] {
                    continue;
                }
                let bad_pair = safety.f[cs].iter().find(|&(hub, bs)| {
                    let n = bs.index() * nc + cs;
                    if strategy == ProgressStrategy::ReachableProduct && self.mark[n] != reach_epoch
                    {
                        return false; // cannot occur: skip
                    }
                    let offered = &self.tau[n];
                    !self.acceptance[hub].iter().any(|req| offered.covers(req))
                });
                if let Some((hub, bs)) = bad_pair {
                    if first_witness.is_none() {
                        first_witness = Some(ProgressWitness {
                            state: StateId(cs as u32),
                            trace: trace_to_state(&safety.c0, &self.alive, StateId(cs as u32)),
                            hub,
                            b_state: bs,
                            needed: na.acceptance(hub).to_vec(),
                            offered: self.tau[bs.index() * nc + cs].to_alphabet(ext_bits),
                        });
                    }
                    self.alive[cs] = false;
                    just_removed[cs] = true;
                    removed_cs.push(cs);
                    removed += 1;
                    any_bad = true;
                }
            }
            if !self.alive[c0_initial] {
                return ProgressPhase {
                    converter: None,
                    iterations,
                    removed,
                    first_witness,
                    stats: self.stats,
                };
            }
            if !any_bad {
                break;
            }
        }

        // Materialize the surviving converter and drop unreachable
        // states.
        let names: Vec<String> = (0..nc).map(|i| format!("c{i}")).collect();
        let transitions: Vec<(StateId, EventId, StateId)> = safety
            .c0
            .external_transitions()
            .filter(|(s, _, t)| self.alive[s.index()] && self.alive[t.index()])
            .collect();
        // Dead states stay as isolated vertices; pruning removes them
        // along with anything no longer reachable.
        let full = protoquot_spec::spec_from_parts(
            "C".to_owned(),
            safety.c0.alphabet().clone(),
            names,
            safety.c0.initial(),
            transitions,
            Vec::new(),
        )
        .expect("progress phase constructs a valid spec");
        ProgressPhase {
            converter: Some(prune_unreachable(&full)),
            iterations,
            removed,
            first_witness,
            stats: self.stats,
        }
    }
}

/// Builds a CSR (offsets + targets) from an edge iterator via counting
/// sort; edges keep their enumeration order within a source bucket.
fn build_csr(n: usize, edges: impl Iterator<Item = (u32, u32)> + Clone) -> (Vec<u32>, Vec<u32>) {
    let mut off = vec![0u32; n + 1];
    for (s, _) in edges.clone() {
        off[s as usize + 1] += 1;
    }
    for i in 0..n {
        off[i + 1] += off[i];
    }
    let mut dst = vec![0u32; off[n] as usize];
    let mut cursor = off.clone();
    for (s, t) in edges {
        dst[cursor[s as usize] as usize] = t;
        cursor[s as usize] += 1;
    }
    (off, dst)
}

// ---------------------------------------------------------------------------
// Reference implementation (pre-incremental), kept for differential
// testing.
// ---------------------------------------------------------------------------

/// The original full-recompute progress phase: rebuilds the product
/// adjacency and reruns Tarjan on every iteration. Kept verbatim so
/// `tests/progress_differential.rs` can assert the incremental engine
/// produces identical converters; limited to ≤ 64 external events.
pub fn progress_phase_reference(b: &Spec, na: &NormalSpec, safety: &SafetyPhase) -> ProgressPhase {
    progress_phase_reference_with(b, na, safety, ProgressStrategy::FullProduct)
}

/// [`progress_phase_reference`] with an explicit strategy.
pub fn progress_phase_reference_with(
    b: &Spec,
    na: &NormalSpec,
    safety: &SafetyPhase,
    strategy: ProgressStrategy,
) -> ProgressPhase {
    let ext = b.alphabet().difference(safety.c0.alphabet());
    assert!(
        ext.len() <= 64,
        "the reference progress engine supports at most 64 external events (got {})",
        ext.len()
    );
    let ext_bits = ExtBits::new(&ext);
    // Per-hub acceptance sets as masks.
    let acceptance: Vec<Vec<u64>> = (0..na.num_hubs())
        .map(|h| na.acceptance(h).iter().map(|a| ext_bits.mask(a)).collect())
        .collect();
    // τ.b ∩ Ext per B-state.
    let b_tau: Vec<u64> = b.states().map(|s| ext_bits.mask(&b.tau(s))).collect();

    let nb = b.num_states();
    let nc = safety.c0.num_states();
    let node = |bs: usize, cs: usize| bs * nc + cs;
    let mut alive = vec![true; nc];
    let mut iterations = 0usize;
    let mut removed = 0usize;
    let mut first_witness: Option<ProgressWitness> = None;

    // B's transitions grouped: internal, Ext-labelled, Int-labelled.
    let mut b_int_edges: HashMap<EventId, Vec<(StateId, StateId)>> = HashMap::new();
    let mut b_ext_edges: Vec<(StateId, StateId)> = Vec::new();
    for (s, e, t) in b.external_transitions() {
        if ext.contains(e) {
            b_ext_edges.push((s, t));
        } else {
            b_int_edges.entry(e).or_default().push((s, t));
        }
    }

    loop {
        iterations += 1;
        // Internal-edge adjacency of the (alive) product: B's λ moves
        // and Int-synchronised moves.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nb * nc];
        for bs in b.states() {
            for &tb in b.internal_from(bs) {
                for cs in 0..nc {
                    if alive[cs] {
                        adj[node(bs.index(), cs)].push(node(tb.index(), cs));
                    }
                }
            }
        }
        for (cs, e, ct) in safety.c0.external_transitions() {
            if !alive[cs.index()] || !alive[ct.index()] {
                continue;
            }
            if let Some(edges) = b_int_edges.get(&e) {
                for &(bs, bt) in edges {
                    adj[node(bs.index(), cs.index())].push(node(bt.index(), ct.index()));
                }
            }
        }

        // For the reachable strategy: which product nodes can occur at
        // all? Forward closure over internal edges *plus* B's Ext moves
        // (which keep the converter state fixed).
        let reachable = match strategy {
            ProgressStrategy::FullProduct => None,
            ProgressStrategy::ReachableProduct => {
                let mut seen = vec![false; nb * nc];
                let start = node(b.initial().index(), safety.c0.initial().index());
                let mut stack = vec![start];
                seen[start] = true;
                while let Some(n) = stack.pop() {
                    let (bs, cs) = (n / nc, n % nc);
                    for &m in &adj[n] {
                        if !seen[m] {
                            seen[m] = true;
                            stack.push(m);
                        }
                    }
                    // Ext moves of B leave the converter state alone.
                    for &(s, t) in &b_ext_edges {
                        if s.index() == bs {
                            let m = node(t.index(), cs);
                            if !seen[m] {
                                seen[m] = true;
                                stack.push(m);
                            }
                        }
                    }
                }
                Some(seen)
            }
        };

        // τ* over the product: SCC condensation + propagation.
        let local: Vec<u64> = (0..nb * nc).map(|n| b_tau[n / nc]).collect();
        let tau_star = propagate_tau_star(&adj, &local);

        // Mark bad states.
        let mut any_bad = false;
        for cs in 0..nc {
            if !alive[cs] {
                continue;
            }
            let bad_pair = safety.f[cs].iter().find(|&(hub, bs)| {
                if let Some(seen) = &reachable {
                    if !seen[node(bs.index(), cs)] {
                        return false; // cannot occur: skip
                    }
                }
                let offered = tau_star[node(bs.index(), cs)];
                !acceptance[hub].iter().any(|&req| req & !offered == 0)
            });
            if let Some((hub, bs)) = bad_pair {
                if first_witness.is_none() {
                    first_witness = Some(ProgressWitness {
                        state: StateId(cs as u32),
                        trace: trace_to_state(&safety.c0, &alive, StateId(cs as u32)),
                        hub,
                        b_state: bs,
                        needed: na.acceptance(hub).to_vec(),
                        offered: ext_bits.unmask(tau_star[node(bs.index(), cs)]),
                    });
                }
                alive[cs] = false;
                removed += 1;
                any_bad = true;
            }
        }
        if !alive[safety.c0.initial().index()] {
            return ProgressPhase {
                converter: None,
                iterations,
                removed,
                first_witness,
                stats: ProgressEngineStats::default(),
            };
        }
        if !any_bad {
            break;
        }
    }

    // Materialize the surviving converter and drop unreachable states.
    let names: Vec<String> = (0..nc).map(|i| format!("c{i}")).collect();
    let transitions: Vec<(StateId, EventId, StateId)> = safety
        .c0
        .external_transitions()
        .filter(|(s, _, t)| alive[s.index()] && alive[t.index()])
        .collect();
    // Dead states stay as isolated vertices; pruning removes them along
    // with anything no longer reachable.
    let full = protoquot_spec::spec_from_parts(
        "C".to_owned(),
        safety.c0.alphabet().clone(),
        names,
        safety.c0.initial(),
        transitions,
        Vec::new(),
    )
    .expect("progress phase constructs a valid spec");
    ProgressPhase {
        converter: Some(prune_unreachable(&full)),
        iterations,
        removed,
        first_witness,
        stats: ProgressEngineStats::default(),
    }
}

/// Shortest trace from `c0`'s initial state to `target` through alive
/// states (BFS over the converter graph).
fn trace_to_state(c0: &Spec, alive: &[bool], target: StateId) -> Vec<EventId> {
    let n = c0.num_states();
    let mut parent: Vec<Option<(StateId, EventId)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[c0.initial().index()] = true;
    queue.push_back(c0.initial());
    while let Some(s) = queue.pop_front() {
        if s == target {
            break;
        }
        for &(e, t) in c0.external_from(s) {
            if alive[t.index()] && !seen[t.index()] {
                seen[t.index()] = true;
                parent[t.index()] = Some((s, e));
                queue.push_back(t);
            }
        }
    }
    let mut rev = Vec::new();
    let mut cur = target;
    while let Some((p, e)) = parent[cur.index()] {
        rev.push(e);
        cur = p;
    }
    rev.reverse();
    rev
}

/// τ* over a directed graph: for each node, the union of `local` over
/// all reachable nodes (including itself). Tarjan condensation; SCCs are
/// emitted in reverse topological order, so a single ascending pass
/// accumulates cross-edges. (Reference-engine helper.)
fn propagate_tau_star(adj: &[Vec<usize>], local: &[u64]) -> Vec<u64> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_of = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut num_sccs = 0usize;

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, ci)) = call.last() {
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                call.last_mut().unwrap().1 += 1;
                let w = adj[v][ci];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        scc_of[w] = num_sccs;
                        if w == v {
                            break;
                        }
                    }
                    num_sccs += 1;
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }

    // Accumulate local masks per SCC.
    let mut scc_mask = vec![0u64; num_sccs];
    for v in 0..n {
        scc_mask[scc_of[v]] |= local[v];
    }
    // Cross edges always point to an earlier-emitted SCC, so ascending
    // order sees targets finalized first.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            let (s, t) = (scc_of[v], scc_of[w]);
            if s != t {
                edges.push((s, t));
            }
        }
    }
    edges.sort_unstable_by_key(|&(s, _)| s);
    for (s, t) in edges {
        debug_assert!(t < s);
        scc_mask[s] |= scc_mask[t];
    }
    (0..n).map(|v| scc_mask[scc_of[v]]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::{safety_phase, SafetyLimits};
    use protoquot_spec::{compose, normalize, satisfies, SpecBuilder};

    fn service() -> Spec {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        sb.build().unwrap()
    }

    /// B where the converter simply forwards: progress achievable.
    #[test]
    fn progress_keeps_working_converter() {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b2, "del", b0);
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["fwd"]);
        let na = normalize(&service());
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        let p = progress_phase(&b, &na, &s);
        let conv = p.converter.expect("converter must exist");
        assert!(satisfies(&compose(&b, &conv), &service()).unwrap().is_ok());
        assert!(p.first_witness.is_none());
        // Engine counters: one full pass, nothing incremental needed.
        assert_eq!(p.stats.slice_sizes.len(), p.iterations);
        assert_eq!(p.stats.slice_sizes[0], p.stats.product_nodes);
    }

    /// B that deadlocks after acc unless the converter fires `go`,
    /// which is unsafe (leads to double delivery). Safety admits the
    /// do-nothing converter; progress then removes everything — and the
    /// witness explains why.
    #[test]
    fn progress_detects_unresolvable_conflict_with_witness() {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        let b3 = bb.state("b3");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "go", b2);
        bb.ext(b2, "del", b3);
        bb.ext(b3, "del", b0);
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["go"]);
        let na = normalize(&service());
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        let p = progress_phase(&b, &na, &s);
        assert!(p.converter.is_none(), "no converter should survive");
        let w = p.first_witness.expect("witness explains the failure");
        // The stuck pair: service wants del, composite offers nothing.
        assert_eq!(w.b_state, b1);
        assert!(w.offered.is_empty());
        assert!(w.needed.iter().any(|n| n.contains(EventId::new("del"))));
        assert!(w.trace.is_empty(), "the initial state itself is bad");
    }

    /// Progress must iterate: removing one state makes another bad.
    #[test]
    fn progress_iterates_to_fixpoint() {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        let b3 = bb.state("b3");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "m1", b2);
        bb.ext(b2, "m2", b3);
        bb.ext(b3, "del", b0);
        bb.event("m3");
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["m1", "m2", "m3"]);
        let na = normalize(&service());
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        let p = progress_phase(&b, &na, &s);
        let conv = p.converter.expect("converter exists");
        assert!(satisfies(&compose(&b, &conv), &service()).unwrap().is_ok());
    }

    /// Both strategies verify; the reachable strategy never keeps fewer
    /// states.
    #[test]
    fn strategies_agree_on_verification() {
        for (mk, expect_some) in [
            (relay_b as fn() -> (Spec, Alphabet), true),
            (dead_b as fn() -> (Spec, Alphabet), false),
        ] {
            let (b, int) = mk();
            let na = normalize(&service());
            let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
                .unwrap()
                .unwrap();
            let full = progress_phase_with(&b, &na, &s, ProgressStrategy::FullProduct);
            let reach = progress_phase_with(&b, &na, &s, ProgressStrategy::ReachableProduct);
            assert_eq!(full.converter.is_some(), expect_some);
            if let Some(cf) = &full.converter {
                let cr = reach
                    .converter
                    .as_ref()
                    .expect("reachable keeps at least as much");
                assert!(cr.num_states() >= cf.num_states());
                assert!(satisfies(&compose(&b, cf), &service()).unwrap().is_ok());
                assert!(satisfies(&compose(&b, cr), &service()).unwrap().is_ok());
            }
        }
    }

    /// The incremental engine and the retained reference implementation
    /// agree on these unit fixtures (the broad check lives in
    /// `tests/progress_differential.rs`).
    #[test]
    fn incremental_matches_reference_on_fixtures() {
        for mk in [
            relay_b as fn() -> (Spec, Alphabet),
            dead_b as fn() -> (Spec, Alphabet),
        ] {
            let (b, int) = mk();
            let na = normalize(&service());
            let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
                .unwrap()
                .unwrap();
            for strategy in [
                ProgressStrategy::FullProduct,
                ProgressStrategy::ReachableProduct,
            ] {
                let new = progress_phase_with(&b, &na, &s, strategy);
                let old = progress_phase_reference_with(&b, &na, &s, strategy);
                assert_eq!(new.converter, old.converter);
                assert_eq!(new.iterations, old.iterations);
                assert_eq!(new.removed, old.removed);
            }
        }
    }

    fn relay_b() -> (Spec, Alphabet) {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b2, "del", b0);
        (bb.build().unwrap(), Alphabet::from_names(["fwd"]))
    }

    fn dead_b() -> (Spec, Alphabet) {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        bb.ext(b0, "acc", b1);
        bb.event("decoy");
        bb.event("del");
        (bb.build().unwrap(), Alphabet::from_names(["decoy"]))
    }

    #[test]
    fn ext_bits_masks_roundtrip() {
        let ext = Alphabet::from_names(["x", "y"]);
        let bits = ExtBits::new(&ext);
        let m = bits.mask(&Alphabet::from_names(["y", "z"]));
        assert_eq!(m.count_ones(), 1);
        assert_eq!(bits.unmask(m), Alphabet::from_names(["y"]));
        assert_eq!(bits.mask(&ext).count_ones(), 2);
        assert_eq!(bits.unmask(bits.mask(&ext)), ext);
        assert_eq!(bits.mask(&Alphabet::new()), 0);
    }

    #[test]
    fn wide_masks_roundtrip_past_64_events() {
        let names: Vec<String> = (0..130).map(|i| format!("ev{i:03}")).collect();
        let ext: Alphabet = names.iter().map(|s| s.as_str()).collect();
        let bits = ExtBits::new(&ext);
        assert!(bits.len() > 64);
        let full = WideMask::from_alphabet(&bits, &ext);
        assert_eq!(full.to_alphabet(&bits), ext);
        let some: Alphabet = Alphabet::from_names(["ev000", "ev064", "ev129"]);
        let m = WideMask::from_alphabet(&bits, &some);
        assert_eq!(m.to_alphabet(&bits), some);
        assert!(full.covers(&m));
        assert!(!m.covers(&full));
        let mut u = WideMask::from_alphabet(&bits, &Alphabet::new());
        assert_eq!(u.to_alphabet(&bits), Alphabet::new());
        u.union_with(&m);
        assert_eq!(u.to_alphabet(&bits), some);
    }

    #[test]
    fn tau_star_propagation_on_dag_and_cycle() {
        // 0 -> 1 -> 2, 2 -> 1 (cycle 1-2), local: 0:001, 1:010, 2:100.
        let adj = vec![vec![1], vec![2], vec![1]];
        let local = vec![0b001, 0b010, 0b100];
        let t = propagate_tau_star(&adj, &local);
        assert_eq!(t[2], 0b110);
        assert_eq!(t[1], 0b110);
        assert_eq!(t[0], 0b111);
    }

    #[test]
    fn csr_buckets_preserve_order() {
        let edges = [(2u32, 0u32), (0, 1), (2, 1), (0, 2)];
        let (off, dst) = build_csr(3, edges.iter().copied());
        assert_eq!(off, vec![0, 2, 2, 4]);
        assert_eq!(&dst[off[0] as usize..off[1] as usize], &[1, 2]);
        assert_eq!(&dst[off[2] as usize..off[3] as usize], &[0, 1]);
    }
}
