//! The progress phase of the quotient algorithm (paper Figure 6).
//!
//! Iteratively deletes *bad* states from the safety-phase output `C0`.
//! A converter state `c` is bad iff some `(a, b) ∈ f.c` has
//! `¬prog.a.⟨b,c⟩`: the service may be in a sink set none of whose
//! acceptance sets is fully offered (via τ*) by the composite `B ‖ C`
//! at `⟨b, c⟩`. Deleting states shrinks τ* in the composite, so the
//! check repeats until a fixpoint; removing the initial state means no
//! converter exists.
//!
//! τ*⟨b,c⟩ is computed on the `S_B × S_C` product: internal edges are
//! B's λ moves plus `Int`-synchronised moves of B and C (and, for
//! reachability, B's `Ext` moves); the per-node enabled set is
//! `τ.b ∩ Ext` (C has no `Ext` events). The per-node sets propagate
//! over the condensation of the internal graph. `Ext` is limited to 64
//! events so sets are `u64` masks.
//!
//! ## Strategies
//!
//! * [`ProgressStrategy::FullProduct`] — the paper's Figure 6 verbatim:
//!   every `(a, b) ∈ f.c` is checked, with τ* computed over the whole
//!   product (the definition is forward-looking, so this is always
//!   well-defined).
//! * [`ProgressStrategy::ReachableProduct`] — an ablation this
//!   implementation adds: as deletions make parts of the composite
//!   unreachable, pairs whose product node can no longer occur are
//!   *skipped* rather than checked against stale τ* values. This is a
//!   sound refinement — unreachable states cannot cause a violation —
//!   and can only keep **more** converter behaviour than Figure 6
//!   (every output still passes independent verification; see the
//!   tests and `tests/properties.rs`).

use crate::safety::SafetyPhase;
use protoquot_spec::{prune_unreachable, Alphabet, EventId, NormalSpec, Spec, StateId};
use std::collections::HashMap;

/// How the fixpoint treats pairs made unreachable by earlier deletions
/// (see module docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ProgressStrategy {
    /// The paper's Figure 6, verbatim.
    #[default]
    FullProduct,
    /// Skip pairs whose composite state has become unreachable.
    ReachableProduct,
}

/// A concrete explanation of the *first* bad state found: after the
/// converter trace `trace`, the components may be in `b_state` with the
/// service at hub `hub`; the composite can then only ever offer
/// `offered`, which covers none of the service's acceptance sets
/// `needed`.
#[derive(Clone, Debug)]
pub struct ProgressWitness {
    /// The bad converter state (index in `C0`).
    pub state: StateId,
    /// A converter trace (over `Int`) reaching it.
    pub trace: Vec<EventId>,
    /// The failing pair's service hub.
    pub hub: usize,
    /// The failing pair's B-state.
    pub b_state: StateId,
    /// A's sink acceptance sets at the hub.
    pub needed: Vec<Alphabet>,
    /// τ* of the composite at `(b_state, state)`.
    pub offered: Alphabet,
}

/// Outcome of the progress phase.
#[derive(Clone, Debug)]
pub struct ProgressPhase {
    /// The converter, if one survives (reachable states only).
    pub converter: Option<Spec>,
    /// Number of remove-and-recompute iterations performed.
    pub iterations: usize,
    /// Converter states removed as bad (cumulative, before the final
    /// reachability prune).
    pub removed: usize,
    /// Why the first bad state was bad (useful when the phase empties
    /// the converter); `None` if nothing was ever removed.
    pub first_witness: Option<ProgressWitness>,
}

/// Runs the Figure 6 fixpoint (paper-exact strategy).
pub fn progress_phase(b: &Spec, na: &NormalSpec, safety: &SafetyPhase) -> ProgressPhase {
    progress_phase_with(b, na, safety, ProgressStrategy::FullProduct)
}

/// Runs the progress fixpoint with an explicit strategy.
pub fn progress_phase_with(
    b: &Spec,
    na: &NormalSpec,
    safety: &SafetyPhase,
    strategy: ProgressStrategy,
) -> ProgressPhase {
    let ext = b.alphabet().difference(safety.c0.alphabet());
    let ext_bits = ExtBits::new(&ext);
    // Per-hub acceptance sets as masks.
    let acceptance: Vec<Vec<u64>> = (0..na.num_hubs())
        .map(|h| na.acceptance(h).iter().map(|a| ext_bits.mask(a)).collect())
        .collect();
    // τ.b ∩ Ext per B-state.
    let b_tau: Vec<u64> = b.states().map(|s| ext_bits.mask(&b.tau(s))).collect();

    let nb = b.num_states();
    let nc = safety.c0.num_states();
    let node = |bs: usize, cs: usize| bs * nc + cs;
    let mut alive = vec![true; nc];
    let mut iterations = 0usize;
    let mut removed = 0usize;
    let mut first_witness: Option<ProgressWitness> = None;

    // B's transitions grouped: internal, Ext-labelled, Int-labelled.
    let mut b_int_edges: HashMap<EventId, Vec<(StateId, StateId)>> = HashMap::new();
    let mut b_ext_edges: Vec<(StateId, StateId)> = Vec::new();
    for (s, e, t) in b.external_transitions() {
        if ext.contains(e) {
            b_ext_edges.push((s, t));
        } else {
            b_int_edges.entry(e).or_default().push((s, t));
        }
    }

    loop {
        iterations += 1;
        // Internal-edge adjacency of the (alive) product: B's λ moves
        // and Int-synchronised moves.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nb * nc];
        for bs in b.states() {
            for &tb in b.internal_from(bs) {
                for cs in 0..nc {
                    if alive[cs] {
                        adj[node(bs.index(), cs)].push(node(tb.index(), cs));
                    }
                }
            }
        }
        for (cs, e, ct) in safety.c0.external_transitions() {
            if !alive[cs.index()] || !alive[ct.index()] {
                continue;
            }
            if let Some(edges) = b_int_edges.get(&e) {
                for &(bs, bt) in edges {
                    adj[node(bs.index(), cs.index())].push(node(bt.index(), ct.index()));
                }
            }
        }

        // For the reachable strategy: which product nodes can occur at
        // all? Forward closure over internal edges *plus* B's Ext moves
        // (which keep the converter state fixed).
        let reachable = match strategy {
            ProgressStrategy::FullProduct => None,
            ProgressStrategy::ReachableProduct => {
                let mut seen = vec![false; nb * nc];
                let start = node(b.initial().index(), safety.c0.initial().index());
                let mut stack = vec![start];
                seen[start] = true;
                while let Some(n) = stack.pop() {
                    let (bs, cs) = (n / nc, n % nc);
                    for &m in &adj[n] {
                        if !seen[m] {
                            seen[m] = true;
                            stack.push(m);
                        }
                    }
                    // Ext moves of B leave the converter state alone.
                    for &(s, t) in &b_ext_edges {
                        if s.index() == bs {
                            let m = node(t.index(), cs);
                            if !seen[m] {
                                seen[m] = true;
                                stack.push(m);
                            }
                        }
                    }
                }
                Some(seen)
            }
        };

        // τ* over the product: SCC condensation + propagation.
        let local: Vec<u64> = (0..nb * nc).map(|n| b_tau[n / nc]).collect();
        let tau_star = propagate_tau_star(&adj, &local);

        // Mark bad states.
        let mut any_bad = false;
        for cs in 0..nc {
            if !alive[cs] {
                continue;
            }
            let bad_pair = safety.f[cs].iter().find(|&(hub, bs)| {
                if let Some(seen) = &reachable {
                    if !seen[node(bs.index(), cs)] {
                        return false; // cannot occur: skip
                    }
                }
                let offered = tau_star[node(bs.index(), cs)];
                !acceptance[hub].iter().any(|&req| req & !offered == 0)
            });
            if let Some((hub, bs)) = bad_pair {
                if first_witness.is_none() {
                    first_witness = Some(ProgressWitness {
                        state: StateId(cs as u32),
                        trace: trace_to_state(&safety.c0, &alive, StateId(cs as u32)),
                        hub,
                        b_state: bs,
                        needed: na.acceptance(hub).to_vec(),
                        offered: ext_bits.unmask(tau_star[node(bs.index(), cs)]),
                    });
                }
                alive[cs] = false;
                removed += 1;
                any_bad = true;
            }
        }
        if !alive[safety.c0.initial().index()] {
            return ProgressPhase {
                converter: None,
                iterations,
                removed,
                first_witness,
            };
        }
        if !any_bad {
            break;
        }
    }

    // Materialize the surviving converter and drop unreachable states.
    let names: Vec<String> = (0..nc).map(|i| format!("c{i}")).collect();
    let transitions: Vec<(StateId, EventId, StateId)> = safety
        .c0
        .external_transitions()
        .filter(|(s, _, t)| alive[s.index()] && alive[t.index()])
        .collect();
    // Dead states stay as isolated vertices; pruning removes them along
    // with anything no longer reachable.
    let full = protoquot_spec::spec_from_parts(
        "C".to_owned(),
        safety.c0.alphabet().clone(),
        names,
        safety.c0.initial(),
        transitions,
        Vec::new(),
    )
    .expect("progress phase constructs a valid spec");
    ProgressPhase {
        converter: Some(prune_unreachable(&full)),
        iterations,
        removed,
        first_witness,
    }
}

/// Shortest trace from `c0`'s initial state to `target` through alive
/// states (BFS over the converter graph).
fn trace_to_state(c0: &Spec, alive: &[bool], target: StateId) -> Vec<EventId> {
    let n = c0.num_states();
    let mut parent: Vec<Option<(StateId, EventId)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[c0.initial().index()] = true;
    queue.push_back(c0.initial());
    while let Some(s) = queue.pop_front() {
        if s == target {
            break;
        }
        for &(e, t) in c0.external_from(s) {
            if alive[t.index()] && !seen[t.index()] {
                seen[t.index()] = true;
                parent[t.index()] = Some((s, e));
                queue.push_back(t);
            }
        }
    }
    let mut rev = Vec::new();
    let mut cur = target;
    while let Some((p, e)) = parent[cur.index()] {
        rev.push(e);
        cur = p;
    }
    rev.reverse();
    rev
}

/// Maps an `Ext` alphabet (≤ 64 events) to bit positions.
struct ExtBits {
    bit: HashMap<EventId, u32>,
    events: Vec<EventId>,
}

impl ExtBits {
    fn new(ext: &Alphabet) -> ExtBits {
        assert!(
            ext.len() <= 64,
            "progress phase supports at most 64 external events (got {})",
            ext.len()
        );
        ExtBits {
            bit: ext.iter().zip(0u32..).collect(),
            events: ext.iter().collect(),
        }
    }

    /// Mask of the events of `a` that are in `Ext`.
    fn mask(&self, a: &Alphabet) -> u64 {
        a.iter()
            .filter_map(|e| self.bit.get(&e))
            .fold(0u64, |m, &b| m | (1 << b))
    }

    /// Inverse of [`mask`](Self::mask).
    fn unmask(&self, m: u64) -> Alphabet {
        self.events
            .iter()
            .enumerate()
            .filter(|&(i, _)| m & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect()
    }
}

/// τ* over a directed graph: for each node, the union of `local` over
/// all reachable nodes (including itself). Tarjan condensation; SCCs are
/// emitted in reverse topological order, so a single ascending pass
/// accumulates cross-edges.
fn propagate_tau_star(adj: &[Vec<usize>], local: &[u64]) -> Vec<u64> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_of = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut num_sccs = 0usize;

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&(v, ci)) = call.last() {
            if ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if ci < adj[v].len() {
                call.last_mut().unwrap().1 += 1;
                let w = adj[v][ci];
                if index[w] == usize::MAX {
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        scc_of[w] = num_sccs;
                        if w == v {
                            break;
                        }
                    }
                    num_sccs += 1;
                }
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }

    // Accumulate local masks per SCC.
    let mut scc_mask = vec![0u64; num_sccs];
    for v in 0..n {
        scc_mask[scc_of[v]] |= local[v];
    }
    // Cross edges always point to an earlier-emitted SCC, so ascending
    // order sees targets finalized first.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            let (s, t) = (scc_of[v], scc_of[w]);
            if s != t {
                edges.push((s, t));
            }
        }
    }
    edges.sort_unstable_by_key(|&(s, _)| s);
    for (s, t) in edges {
        debug_assert!(t < s);
        scc_mask[s] |= scc_mask[t];
    }
    (0..n).map(|v| scc_mask[scc_of[v]]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::{safety_phase, SafetyLimits};
    use protoquot_spec::{compose, normalize, satisfies, SpecBuilder};

    fn service() -> Spec {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        sb.build().unwrap()
    }

    /// B where the converter simply forwards: progress achievable.
    #[test]
    fn progress_keeps_working_converter() {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b2, "del", b0);
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["fwd"]);
        let na = normalize(&service());
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        let p = progress_phase(&b, &na, &s);
        let conv = p.converter.expect("converter must exist");
        assert!(satisfies(&compose(&b, &conv), &service()).unwrap().is_ok());
        assert!(p.first_witness.is_none());
    }

    /// B that deadlocks after acc unless the converter fires `go`,
    /// which is unsafe (leads to double delivery). Safety admits the
    /// do-nothing converter; progress then removes everything — and the
    /// witness explains why.
    #[test]
    fn progress_detects_unresolvable_conflict_with_witness() {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        let b3 = bb.state("b3");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "go", b2);
        bb.ext(b2, "del", b3);
        bb.ext(b3, "del", b0);
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["go"]);
        let na = normalize(&service());
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        let p = progress_phase(&b, &na, &s);
        assert!(p.converter.is_none(), "no converter should survive");
        let w = p.first_witness.expect("witness explains the failure");
        // The stuck pair: service wants del, composite offers nothing.
        assert_eq!(w.b_state, b1);
        assert!(w.offered.is_empty());
        assert!(w.needed.iter().any(|n| n.contains(EventId::new("del"))));
        assert!(w.trace.is_empty(), "the initial state itself is bad");
    }

    /// Progress must iterate: removing one state makes another bad.
    #[test]
    fn progress_iterates_to_fixpoint() {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        let b3 = bb.state("b3");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "m1", b2);
        bb.ext(b2, "m2", b3);
        bb.ext(b3, "del", b0);
        bb.event("m3");
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["m1", "m2", "m3"]);
        let na = normalize(&service());
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        let p = progress_phase(&b, &na, &s);
        let conv = p.converter.expect("converter exists");
        assert!(satisfies(&compose(&b, &conv), &service()).unwrap().is_ok());
    }

    /// Both strategies verify; the reachable strategy never keeps fewer
    /// states.
    #[test]
    fn strategies_agree_on_verification() {
        for (mk, expect_some) in [
            (relay_b as fn() -> (Spec, Alphabet), true),
            (dead_b as fn() -> (Spec, Alphabet), false),
        ] {
            let (b, int) = mk();
            let na = normalize(&service());
            let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
                .unwrap()
                .unwrap();
            let full = progress_phase_with(&b, &na, &s, ProgressStrategy::FullProduct);
            let reach = progress_phase_with(&b, &na, &s, ProgressStrategy::ReachableProduct);
            assert_eq!(full.converter.is_some(), expect_some);
            if let Some(cf) = &full.converter {
                let cr = reach.converter.as_ref().expect("reachable keeps at least as much");
                assert!(cr.num_states() >= cf.num_states());
                assert!(satisfies(&compose(&b, cf), &service()).unwrap().is_ok());
                assert!(satisfies(&compose(&b, cr), &service()).unwrap().is_ok());
            }
        }
    }

    fn relay_b() -> (Spec, Alphabet) {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b2, "del", b0);
        (bb.build().unwrap(), Alphabet::from_names(["fwd"]))
    }

    fn dead_b() -> (Spec, Alphabet) {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        bb.ext(b0, "acc", b1);
        bb.event("decoy");
        bb.event("del");
        (bb.build().unwrap(), Alphabet::from_names(["decoy"]))
    }

    #[test]
    fn ext_bits_masks_roundtrip() {
        let ext = Alphabet::from_names(["x", "y"]);
        let bits = ExtBits::new(&ext);
        let m = bits.mask(&Alphabet::from_names(["y", "z"]));
        assert_eq!(m.count_ones(), 1);
        assert_eq!(bits.unmask(m), Alphabet::from_names(["y"]));
        assert_eq!(bits.mask(&ext).count_ones(), 2);
        assert_eq!(bits.unmask(bits.mask(&ext)), ext);
        assert_eq!(bits.mask(&Alphabet::new()), 0);
    }

    #[test]
    fn tau_star_propagation_on_dag_and_cycle() {
        // 0 -> 1 -> 2, 2 -> 1 (cycle 1-2), local: 0:001, 1:010, 2:100.
        let adj = vec![vec![1], vec![2], vec![1]];
        let local = vec![0b001, 0b010, 0b100];
        let t = propagate_tau_star(&adj, &local);
        assert_eq!(t[2], 0b110);
        assert_eq!(t[1], 0b110);
        assert_eq!(t[0], 0b111);
    }
}
