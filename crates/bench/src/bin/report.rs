//! Prints the full experiment report used to fill `EXPERIMENTS.md`:
//! the §5 qualitative results plus the §7 complexity-shape tables.
//!
//! Run with: `cargo run -p protoquot-bench --bin report --release`
//!
//! `--quick` instead runs only the CI smoke gate: times the
//! nfa-blowup-11 safety+progress derivation, writes `BENCH_smoke.json`,
//! and exits nonzero if the wall time regressed more than 2× against
//! the committed baseline (`crates/bench/BENCH_BASELINE.json`).

use protoquot_bench::paper_report;
use protoquot_core::{
    converter_verdict_reference, converter_verdict_with, progress_phase, safety_engine,
    safety_phase, safety_phase_reference, solve, SafetyLimits,
};
use protoquot_protocols::service::windowed;
use protoquot_protocols::{
    at_least_once, exactly_once, nfa_blowup, relay_chain, symmetric_configuration, toggle_puzzle,
};
use protoquot_runtime::{
    drive, Conn, DriveConfig, Frame, Gateway, GatewayConfig, GuardProgram, LoopbackConn, MuxClient,
    MuxTransport, ReactorConfig, ReactorServer, Reply, TcpConn,
};
use protoquot_sim::{redirect_transition, FaultPlan, FleetConfig, FleetRunner};
use protoquot_spec::normalize;
use std::time::Instant;

/// Best-of-3 wall times (ms) of the nfa-blowup-11 safety and progress
/// phases — the workload the CI smoke gate tracks.
fn nfa_blowup_11_phase_times() -> (f64, f64) {
    let (b, int) = nfa_blowup(11);
    let na = normalize(&exactly_once());
    let mut safety_ms = f64::INFINITY;
    let mut progress_ms = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        safety_ms = safety_ms.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        let p = progress_phase(&b, &na, &s);
        progress_ms = progress_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert!(p.converter.is_some());
    }
    (safety_ms, progress_ms)
}

/// Best-of-3 wall time (ms) of the compiled verification engine on the
/// EXP-W verified-converter check: the 173-state converter the §5
/// symmetric configuration yields against the weakened at-least-once
/// service, re-verified with [`converter_verdict_with`] at one worker
/// thread (the interpreted reference `compose` + `satisfies` takes
/// ~22 ms on this workload — the figure EXPERIMENTS.md EXP-W records).
fn exp_w_verify_time() -> f64 {
    let cfg = symmetric_configuration();
    let service = at_least_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("EXP-W converter exists");
    let mut verify_ms = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let (verdict, _) =
            converter_verdict_with(&cfg.b, &service, &q.converter, 1).expect("interfaces line up");
        verify_ms = verify_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert!(verdict.is_ok(), "EXP-W converter must verify");
    }
    verify_ms
}

/// Relays `runs` gateway sessions of the Fig. 14 colocated system over
/// the in-process loopback transport with `threads` client threads and
/// as many gateway workers, returning `(accepted_events_per_sec,
/// frames_relayed)`. The gateway's online guard is live for every
/// frame, so this measures the full codec → shard → guard path.
fn loopback_throughput(threads: usize, runs: u64) -> (f64, u64) {
    let cfg = protoquot_protocols::colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("Fig. 14 converter exists");
    let gw = Gateway::new(
        &[&cfg.b, &q.converter],
        &service,
        GatewayConfig {
            workers: threads,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway must compile the system");
    let dcfg = DriveConfig {
        runs,
        threads,
        seed: 0x50AB,
        max_steps: 600,
        faults: FaultPlan::parse("loss,dup,reorder").unwrap(),
        ..DriveConfig::default()
    };
    let t = Instant::now();
    let report = drive(&[cfg.b, q.converter], &service, &dcfg, || {
        Ok(Box::new(LoopbackConn::new(gw.clone())) as Box<dyn Conn>)
    });
    let secs = t.elapsed().as_secs_f64();
    gw.drain();
    assert!(report.is_clean(), "derived converter must relay clean");
    (report.accepted as f64 / secs, report.frames_sent)
}

/// EXP-R2: the gateway capacity pump. Synthesizes a genuine accepted
/// trace straight off the guard DFA ([`GuardProgram::sample_accepted`])
/// and pushes it through the full loopback wire path — encode → decode
/// → shard → guard → reply — as fast as the gateway takes frames,
/// `threads` client threads each owning a private block of sessions.
///
/// Unlike EXP-R1 this is not simulator-paced: the drive loop spends
/// most of its time scheduling faulted component steps, which caps the
/// measured rate well below what the runtime itself sustains. The pump
/// isolates the per-frame runtime cost, so it is the workload that
/// shows the determinized guard's O(1) convictions (set
/// `reference_guard` to compare against the subset-replaying oracle).
/// Returns `(accepted events/sec, frames pumped)`.
fn pump_throughput(
    threads: usize,
    reference_guard: bool,
    sessions_per_thread: u64,
    trace_len: usize,
) -> (f64, u64) {
    let cfg = protoquot_protocols::colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("Fig. 14 converter exists");
    pump_throughput_on(
        &cfg.b,
        &q.converter,
        &service,
        threads,
        reference_guard,
        sessions_per_thread,
        trace_len,
    )
}

/// [`pump_throughput`] over an arbitrary `B`/converter/service triple.
#[allow(clippy::too_many_arguments)]
fn pump_throughput_on(
    b: &protoquot_spec::Spec,
    converter: &protoquot_spec::Spec,
    service: &protoquot_spec::Spec,
    threads: usize,
    reference_guard: bool,
    sessions_per_thread: u64,
    trace_len: usize,
) -> (f64, u64) {
    let gw = Gateway::new(
        &[b, converter],
        service,
        GatewayConfig {
            workers: threads,
            reference_guard,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway must compile the system");
    let trace = gw.program().sample_accepted(trace_len);
    assert!(!trace.is_empty(), "colocated system must relay events");
    let t = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads as u64 {
            let gw = gw.clone();
            let trace = &trace;
            scope.spawn(move || {
                let mut conn = LoopbackConn::new(gw);
                for s in 0..sessions_per_thread {
                    let session = tid * sessions_per_thread + s;
                    for &event in trace {
                        match conn.call(&Frame::Event { session, event }) {
                            Ok(Reply::Accepted { .. }) => {}
                            other => panic!("pump frame rejected: {other:?}"),
                        }
                    }
                    let _ = conn.call(&Frame::Close { session });
                }
            });
        }
    });
    let secs = t.elapsed().as_secs_f64();
    gw.drain();
    let snap = gw.stats();
    assert_eq!(snap.convictions, 0, "pumped trace must stay accepted");
    let total = threads as u64 * sessions_per_thread * trace.len() as u64;
    (total as f64 / secs, total)
}

/// EXP-R3/R5 pump over a live reactor server on loopback TCP:
/// `clients` threads each multiplex `sessions_per_client` concurrent
/// sessions over **one** socket, pushing a sampled accepted trace
/// through every session in batched rounds (one frame per session per
/// round, replies drained before the next round — so per-session wire
/// order is program order). `batching: false` drops the server to the
/// per-frame dispatch path (the EXP-R5 before/after axis). Returns
/// `(accepted events/sec, frames pumped)`.
fn reactor_pump_throughput(
    clients: usize,
    sessions_per_client: u64,
    trace_len: usize,
    batching: bool,
) -> (f64, u64) {
    let cfg = protoquot_protocols::colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("Fig. 14 converter exists");
    let gw = Gateway::new(
        &[&cfg.b, &q.converter],
        &service,
        GatewayConfig {
            batching,
            ..GatewayConfig::default()
        },
    )
    .expect("gateway must compile the system");
    let trace = gw.program().sample_accepted(trace_len);
    assert!(!trace.is_empty(), "colocated system must relay events");
    let mut server = ReactorServer::bind(gw.clone(), "127.0.0.1:0", ReactorConfig::default())
        .expect("reactor must bind a loopback port");
    let addr = server.local_addr();
    let t = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients as u64 {
            let trace = &trace;
            scope.spawn(move || {
                let mut conn = MuxClient::connect(addr).expect("connect to reactor");
                let mut replies = Vec::new();
                let base = c * sessions_per_client;
                let mut round = |frames: &mut dyn Iterator<Item = Frame>| {
                    let mut queued = 0u64;
                    for frame in frames {
                        conn.queue(&frame).expect("queue frame");
                        queued += 1;
                    }
                    let mut got = 0u64;
                    while got < queued {
                        conn.exchange(true, &mut replies).expect("exchange");
                        for r in replies.drain(..) {
                            assert!(
                                matches!(r, Reply::Accepted { .. }),
                                "pump frame rejected: {r:?}"
                            );
                            got += 1;
                        }
                    }
                };
                for &event in trace {
                    round(&mut (0..sessions_per_client).map(|s| Frame::Event {
                        session: base + s,
                        event,
                    }));
                }
                round(&mut (0..sessions_per_client).map(|s| Frame::Close { session: base + s }));
            });
        }
    });
    let secs = t.elapsed().as_secs_f64();
    server.stop();
    gw.drain();
    let snap = gw.stats();
    assert_eq!(snap.convictions, 0, "pumped trace must stay accepted");
    let total = clients as u64 * sessions_per_client * trace.len() as u64;
    (total as f64 / secs, total)
}

/// Resident set size of this process in KiB, from `/proc/self/status`
/// (Linux only; `None` elsewhere — EXP-R3 then reports no memory column).
fn vm_rss_kib() -> Option<i64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// One EXP-R3 row over the blocking transport: `sessions` concurrent
/// TCP connections (the blocking server pins one OS thread to each),
/// one session per connection, pumped in lockstep rounds by a single
/// client thread. Returns `(events/sec, frames, rss delta KiB)`.
fn blocking_concurrency_row(sessions: u64, trace_len: usize) -> (f64, u64, i64) {
    let cfg = protoquot_protocols::colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("Fig. 14 converter exists");
    let gw = Gateway::new(&[&cfg.b, &q.converter], &service, GatewayConfig::default())
        .expect("gateway must compile the system");
    let trace = gw.program().sample_accepted(trace_len);
    let rss_before = vm_rss_kib().unwrap_or(0);
    let mut server = protoquot_runtime::TcpServer::bind(gw.clone(), "127.0.0.1:0")
        .expect("blocking server must bind");
    let addr = server.local_addr();
    let mut conns: Vec<TcpConn> = (0..sessions)
        .map(|_| TcpConn::connect(addr).expect("connect"))
        .collect();
    let t = Instant::now();
    for &event in &trace {
        for (s, conn) in conns.iter_mut().enumerate() {
            match conn.call(&Frame::Event {
                session: s as u64,
                event,
            }) {
                Ok(Reply::Accepted { .. }) => {}
                other => panic!("pump frame rejected: {other:?}"),
            }
        }
    }
    let secs = t.elapsed().as_secs_f64();
    let rss_after = vm_rss_kib().unwrap_or(0);
    for (s, conn) in conns.iter_mut().enumerate() {
        let _ = conn.call(&Frame::Close { session: s as u64 });
    }
    drop(conns);
    server.stop();
    gw.drain();
    let total = sessions * trace.len() as u64;
    (total as f64 / secs, total, (rss_after - rss_before).max(0))
}

/// One EXP-R3 row over the reactor: `sessions` concurrent sessions
/// multiplexed over a **single** socket, pumped in batched rounds by a
/// single client thread. Returns `(events/sec, frames, rss delta KiB)`.
fn reactor_concurrency_row(sessions: u64, trace_len: usize) -> (f64, u64, i64) {
    let cfg = protoquot_protocols::colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("Fig. 14 converter exists");
    let gw = Gateway::new(&[&cfg.b, &q.converter], &service, GatewayConfig::default())
        .expect("gateway must compile the system");
    let trace = gw.program().sample_accepted(trace_len);
    let rss_before = vm_rss_kib().unwrap_or(0);
    let mut server = ReactorServer::bind(gw.clone(), "127.0.0.1:0", ReactorConfig::default())
        .expect("reactor must bind");
    let addr = server.local_addr();
    let mut conn = MuxClient::connect(addr).expect("connect");
    let mut replies = Vec::new();
    let t = Instant::now();
    let mut rss_after = rss_before;
    for (i, &event) in trace.iter().enumerate() {
        for s in 0..sessions {
            conn.queue(&Frame::Event { session: s, event })
                .expect("queue");
        }
        let mut got = 0u64;
        while got < sessions {
            conn.exchange(true, &mut replies).expect("exchange");
            for r in replies.drain(..) {
                assert!(matches!(r, Reply::Accepted { .. }), "rejected: {r:?}");
                got += 1;
            }
        }
        if i == 0 {
            // All sessions are resident after the first round.
            rss_after = vm_rss_kib().unwrap_or(rss_before);
        }
    }
    let secs = t.elapsed().as_secs_f64();
    rss_after = rss_after.max(vm_rss_kib().unwrap_or(0));
    for s in 0..sessions {
        conn.queue(&Frame::Close { session: s })
            .expect("queue close");
    }
    let mut got = 0u64;
    while got < sessions {
        conn.exchange(true, &mut replies).expect("exchange");
        got += replies.drain(..).len() as u64;
    }
    server.stop();
    gw.drain();
    let total = sessions * trace.len() as u64;
    (total as f64 / secs, total, (rss_after - rss_before).max(0))
}

/// Best-of-3 wall time (ms) of subset-constructing the guard DFA for
/// the heaviest builtin system (the EXP-W symmetric converter, ~700
/// external product transitions) — the figure the smoke gate tracks so
/// determinization cost never silently regresses into serve startup.
fn guard_build_time() -> f64 {
    let cfg = symmetric_configuration();
    let service = at_least_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("EXP-W converter exists");
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let prog = GuardProgram::new(&[&cfg.b, &q.converter], &service)
            .expect("EXP-W system must compile");
        best = best.min(prog.build_stats().build_ms);
    }
    best
}

/// Reads one numeric field out of the committed baseline JSON object.
fn baseline_field(value: &serde::Value, field: &str) -> Option<f64> {
    value
        .as_obj()
        .and_then(|o| o.get(field))
        .and_then(|v| match v {
            serde::Value::Float(f) => Some(*f),
            serde::Value::Int(i) => Some(*i as f64),
            _ => None,
        })
}

/// The CI smoke gate (`--quick`): emit `BENCH_smoke.json` and fail on
/// a more-than-2× regression of nfa-blowup-11 safety+progress — or of
/// the EXP-W verified-converter check — vs the committed baseline.
/// Returns the process exit code.
fn quick_smoke() -> i32 {
    let (safety_ms, progress_ms) = nfa_blowup_11_phase_times();
    let total_ms = safety_ms + progress_ms;
    let verify_ms = exp_w_verify_time();
    // Best-of-2 gateway capacity pump at one thread (EXP-R2 workload,
    // scaled down for CI): the determinized guard's per-frame rate.
    let serve_events_per_sec = (0..2)
        .map(|_| pump_throughput(1, false, 8, 2_048).0)
        .fold(0.0f64, f64::max);
    // Best-of-2 reactor pump (EXP-R3 workload, scaled down for CI): 256
    // sessions multiplexed over one real loopback socket, batched
    // dispatch on (the production default).
    let reactor_events_per_sec = (0..2)
        .map(|_| reactor_pump_throughput(1, 256, 256, true).0)
        .fold(0.0f64, f64::max);
    let guard_build_ms = guard_build_time();
    let json = format!(
        "{{\"bench\":\"nfa-blowup-11\",\"safety_ms\":{safety_ms:.3},\
         \"progress_ms\":{progress_ms:.3},\"total_ms\":{total_ms:.3},\
         \"verify_ms\":{verify_ms:.3},\
         \"serve_events_per_sec\":{serve_events_per_sec:.0},\
         \"reactor_events_per_sec\":{reactor_events_per_sec:.0},\
         \"guard_build_ms\":{guard_build_ms:.3}}}\n"
    );
    println!(
        "smoke: nfa-blowup-11 safety {safety_ms:.3} ms + progress {progress_ms:.3} ms \
         = {total_ms:.3} ms"
    );
    println!("smoke: EXP-W verified-converter check (engine, 1 thread) {verify_ms:.3} ms");
    println!("smoke: gateway capacity pump {serve_events_per_sec:.0} accepted events/s");
    println!("smoke: reactor mux pump {reactor_events_per_sec:.0} accepted events/s");
    println!("smoke: EXP-W guard DFA build {guard_build_ms:.3} ms");
    if let Err(e) = std::fs::write("BENCH_smoke.json", &json) {
        eprintln!("smoke: cannot write BENCH_smoke.json: {e}");
        return 1;
    }
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_BASELINE.json");
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smoke: cannot read {baseline_path}: {e}");
            return 1;
        }
    };
    let value: serde::Value = match serde_json::from_str(&baseline) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("smoke: {baseline_path} is not valid JSON: {e}");
            return 1;
        }
    };
    let Some(budget_ms) = baseline_field(&value, "total_ms") else {
        eprintln!("smoke: {baseline_path} lacks a numeric `total_ms`");
        return 1;
    };
    println!(
        "smoke: baseline total {budget_ms:.3} ms, gate at {:.3} ms (2x)",
        budget_ms * 2.0
    );
    if total_ms > budget_ms * 2.0 {
        eprintln!(
            "smoke: REGRESSION — nfa-blowup-11 took {total_ms:.3} ms, more than 2x the \
             committed baseline of {budget_ms:.3} ms"
        );
        return 1;
    }
    let Some(verify_budget_ms) = baseline_field(&value, "verify_ms") else {
        eprintln!("smoke: {baseline_path} lacks a numeric `verify_ms`");
        return 1;
    };
    println!(
        "smoke: baseline verify {verify_budget_ms:.3} ms, gate at {:.3} ms (2x)",
        verify_budget_ms * 2.0
    );
    if verify_ms > verify_budget_ms * 2.0 {
        eprintln!(
            "smoke: REGRESSION — the EXP-W verified-converter check took {verify_ms:.3} ms, \
             more than 2x the committed baseline of {verify_budget_ms:.3} ms"
        );
        return 1;
    }
    let Some(serve_budget) = baseline_field(&value, "serve_events_per_sec") else {
        eprintln!("smoke: {baseline_path} lacks a numeric `serve_events_per_sec`");
        return 1;
    };
    println!(
        "smoke: baseline relay {serve_budget:.0} events/s, gate at {:.0} events/s (2x)",
        serve_budget / 2.0
    );
    if serve_events_per_sec < serve_budget / 2.0 {
        eprintln!(
            "smoke: REGRESSION — the gateway relayed {serve_events_per_sec:.0} events/s, \
             less than half the committed baseline of {serve_budget:.0} events/s"
        );
        return 1;
    }
    let Some(reactor_budget) = baseline_field(&value, "reactor_events_per_sec") else {
        eprintln!("smoke: {baseline_path} lacks a numeric `reactor_events_per_sec`");
        return 1;
    };
    println!(
        "smoke: baseline reactor {reactor_budget:.0} events/s, gate at {:.0} events/s (2x)",
        reactor_budget / 2.0
    );
    if reactor_events_per_sec < reactor_budget / 2.0 {
        eprintln!(
            "smoke: REGRESSION — the reactor relayed {reactor_events_per_sec:.0} events/s, \
             less than half the committed baseline of {reactor_budget:.0} events/s"
        );
        return 1;
    }
    let Some(build_budget_ms) = baseline_field(&value, "guard_build_ms") else {
        eprintln!("smoke: {baseline_path} lacks a numeric `guard_build_ms`");
        return 1;
    };
    println!(
        "smoke: baseline guard build {build_budget_ms:.3} ms, gate at {:.3} ms (2x)",
        build_budget_ms * 2.0
    );
    if guard_build_ms > build_budget_ms * 2.0 {
        eprintln!(
            "smoke: REGRESSION — the EXP-W guard DFA took {guard_build_ms:.3} ms to \
             subset-construct, more than 2x the committed baseline of {build_budget_ms:.3} ms"
        );
        return 1;
    }
    println!("smoke: OK");
    0
}

fn main() {
    if std::env::args().skip(1).any(|a| a == "--quick") {
        std::process::exit(quick_smoke());
    }
    println!("{}", paper_report());

    println!("== EXP-C1: safety-phase growth (paper §7: worst-case exponential) ==");
    println!(
        "{:>14} {:>10} {:>12} {:>12} {:>12}",
        "family", "param", "|B| states", "C0 states", "safety ms"
    );
    for n in [2usize, 4, 8, 12, 16] {
        let (b, int) = relay_chain(n);
        let na = normalize(&exactly_once());
        let t = Instant::now();
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        println!(
            "{:>14} {:>10} {:>12} {:>12} {:>12.3}",
            "relay-chain",
            n,
            b.num_states(),
            s.c0.num_states(),
            t.elapsed().as_secs_f64() * 1e3
        );
    }
    for n in [3usize, 5, 7, 9, 11] {
        let (b, int) = nfa_blowup(n);
        let na = normalize(&exactly_once());
        let t = Instant::now();
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        println!(
            "{:>14} {:>10} {:>12} {:>12} {:>12.3}",
            "nfa-blowup",
            n,
            b.num_states(),
            s.c0.num_states(),
            t.elapsed().as_secs_f64() * 1e3
        );
    }
    for n in [2usize, 3, 4, 5, 6] {
        let (b, int) = toggle_puzzle(n);
        let na = normalize(&exactly_once());
        let t = Instant::now();
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        println!(
            "{:>14} {:>10} {:>12} {:>12} {:>12.3}",
            "toggle-puzzle",
            n,
            b.num_states(),
            s.c0.num_states(),
            t.elapsed().as_secs_f64() * 1e3
        );
    }

    println!("\n== EXP-C2: progress phase is cheap relative to safety (paper §7) ==");
    println!(
        "{:>14} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "family", "param", "safety ms", "progress ms", "C0 states", "prog iters"
    );
    for w in [1usize, 2, 3] {
        // Windowed services over the relay chain grow the quotient.
        let (b, int) = relay_chain(2 * w + 2);
        let na = normalize(&windowed(w));
        let t0 = Instant::now();
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        let safety_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let p = progress_phase(&b, &na, &s);
        let progress_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>14} {:>10} {:>12.3} {:>12.3} {:>12} {:>10}",
            "relay/window",
            w,
            safety_ms,
            progress_ms,
            s.c0.num_states(),
            p.iterations
        );
    }
    {
        let cfg = protoquot_protocols::colocated_configuration();
        let q = solve(&cfg.b, &exactly_once(), &cfg.int).unwrap();
        println!(
            "{:>14} {:>10} {:>12.3} {:>12.3} {:>12} {:>10}",
            "paper/Fig14",
            "-",
            q.stats.safety_time.as_secs_f64() * 1e3,
            q.stats.progress_time.as_secs_f64() * 1e3,
            q.stats.safety_states,
            q.stats.progress_iterations
        );
        let sym = protoquot_protocols::symmetric_configuration();
        if let Err(protoquot_core::QuotientError::NoProgressingConverter { .. }) =
            solve(&sym.b, &exactly_once(), &sym.int)
        {
            // timings via a fresh phase split
            let na = normalize(&exactly_once());
            let t0 = Instant::now();
            let s = safety_phase(&sym.b, &na, &sym.int, false, SafetyLimits::default())
                .unwrap()
                .unwrap();
            let safety_ms = t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let p = progress_phase(&sym.b, &na, &s);
            let progress_ms = t1.elapsed().as_secs_f64() * 1e3;
            println!(
                "{:>14} {:>10} {:>12.3} {:>12.3} {:>12} {:>10}",
                "paper/Fig12",
                "-",
                safety_ms,
                progress_ms,
                s.c0.num_states(),
                p.iterations
            );
        }
    }

    println!("\n== EXP-C2b: progress time vs quotient size (polynomial, §7) ==");
    println!(
        "{:>14} {:>10} {:>12} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "family",
        "param",
        "C0 states",
        "progress ms",
        "ms per state",
        "prod nodes",
        "touched",
        "recomps"
    );
    for n in [5usize, 7, 9, 11] {
        let (b, int) = nfa_blowup(n);
        let na = normalize(&exactly_once());
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        let t = Instant::now();
        let p = progress_phase(&b, &na, &s);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(p.converter.is_some());
        println!(
            "{:>14} {:>10} {:>12} {:>12.3} {:>14.5} {:>12} {:>12} {:>10}",
            "nfa-blowup",
            n,
            s.c0.num_states(),
            ms,
            ms / s.c0.num_states() as f64,
            p.stats.product_nodes,
            p.stats.nodes_touched,
            p.stats.tau_star_recomputations
        );
    }

    println!("\n== EXP-C3: incremental engine vs full-recompute reference ==");
    println!(
        "{:>14} {:>10} {:>12} {:>12} {:>12} {:>8} {:>16}",
        "family", "param", "ref ms", "incr ms", "speedup", "iters", "slice sizes"
    );
    let colocated = protoquot_protocols::colocated_configuration();
    for (label, b, int) in [
        ("relay-chain", relay_chain(12).0, relay_chain(12).1),
        ("nfa-blowup", nfa_blowup(11).0, nfa_blowup(11).1),
        ("toggle-puzzle", toggle_puzzle(6).0, toggle_puzzle(6).1),
        ("paper/Fig14", colocated.b, colocated.int),
    ] {
        let na = normalize(&exactly_once());
        let s = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        let time = |f: &dyn Fn() -> protoquot_core::ProgressPhase| {
            let mut best = f64::INFINITY;
            let mut out = None;
            for _ in 0..3 {
                let t = Instant::now();
                let p = f();
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
                out = Some(p);
            }
            (best, out.unwrap())
        };
        let (ref_ms, pr) = time(&|| protoquot_core::progress_phase_reference(&b, &na, &s));
        let (inc_ms, pi) = time(&|| progress_phase(&b, &na, &s));
        assert_eq!(pr.converter, pi.converter, "engines must agree");
        assert_eq!(pr.iterations, pi.iterations);
        let slices: Vec<String> = pi.stats.slice_sizes.iter().map(|s| s.to_string()).collect();
        println!(
            "{:>14} {:>10} {:>12.3} {:>12.3} {:>11.2}x {:>8} {:>16}",
            label,
            "-",
            ref_ms,
            inc_ms,
            ref_ms / inc_ms,
            pi.iterations,
            slices.join(",")
        );
    }

    println!("\n== EXP-C4: interned safety engine vs reference transcription ==");
    println!(
        "{:>14} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "family",
        "threads",
        "ref ms",
        "engine ms",
        "speedup",
        "states",
        "trans",
        "dedup hits",
        "arena KiB"
    );
    let colocated = protoquot_protocols::colocated_configuration();
    let symmetric = protoquot_protocols::symmetric_configuration();
    for (label, b, int) in [
        ("nfa-blowup-11", nfa_blowup(11).0, nfa_blowup(11).1),
        ("toggle-puzzle-6", toggle_puzzle(6).0, toggle_puzzle(6).1),
        ("paper/Fig14", colocated.b, colocated.int),
        ("paper/Fig12", symmetric.b, symmetric.int),
    ] {
        let na = normalize(&exactly_once());
        // Best of 3, like EXP-C3.
        let mut ref_ms = f64::INFINITY;
        let mut reference = None;
        for _ in 0..3 {
            let t = Instant::now();
            let s = safety_phase_reference(&b, &na, &int, false, SafetyLimits::default())
                .unwrap()
                .unwrap();
            ref_ms = ref_ms.min(t.elapsed().as_secs_f64() * 1e3);
            reference = Some(s);
        }
        let reference = reference.unwrap();
        for threads in [1usize, 2, 8] {
            let mut eng_ms = f64::INFINITY;
            let mut out = None;
            for _ in 0..3 {
                let t = Instant::now();
                let o = safety_engine(&b, &na, &int, false, SafetyLimits::default(), threads)
                    .unwrap()
                    .unwrap();
                eng_ms = eng_ms.min(t.elapsed().as_secs_f64() * 1e3);
                out = Some(o);
            }
            let out = out.unwrap();
            assert_eq!(out.phase.c0, reference.c0, "engines must agree");
            assert_eq!(out.phase.f, reference.f);
            println!(
                "{:>14} {:>8} {:>10.3} {:>10.3} {:>9.2}x {:>10} {:>10} {:>11} {:>10.1}",
                label,
                threads,
                ref_ms,
                eng_ms,
                ref_ms / eng_ms,
                out.stats.states,
                out.stats.transitions,
                out.stats.dedup_hits,
                out.stats.arena_bytes as f64 / 1024.0
            );
        }
    }

    println!("\n== EXP-C5: compiled verification engine vs reference oracle ==");
    println!(
        "{:>14} {:>8} {:>10} {:>10} {:>10} {:>8} {:>8} {:>6} {:>8} {:>10}",
        "instance",
        "threads",
        "ref ms",
        "engine ms",
        "speedup",
        "states",
        "trans",
        "hubs",
        "pairs",
        "arena KiB"
    );
    {
        let colocated = protoquot_protocols::colocated_configuration();
        let symmetric = symmetric_configuration();
        let instances: Vec<(
            &str,
            protoquot_spec::Spec,
            protoquot_spec::Alphabet,
            protoquot_spec::Spec,
        )> = vec![
            (
                "relay-chain-12",
                relay_chain(12).0,
                relay_chain(12).1,
                exactly_once(),
            ),
            (
                "nfa-blowup-11",
                nfa_blowup(11).0,
                nfa_blowup(11).1,
                exactly_once(),
            ),
            ("paper/Fig14", colocated.b, colocated.int, exactly_once()),
            ("EXP-W/sym", symmetric.b, symmetric.int, at_least_once()),
        ];
        for (label, b, int, service) in instances {
            let q = solve(&b, &service, &int).expect("instance has a converter");
            let mut ref_ms = f64::INFINITY;
            let mut reference = None;
            for _ in 0..3 {
                let t = Instant::now();
                let r = converter_verdict_reference(&b, &service, &q.converter).unwrap();
                ref_ms = ref_ms.min(t.elapsed().as_secs_f64() * 1e3);
                reference = Some(r);
            }
            let reference = reference.unwrap();
            assert!(reference.is_ok(), "{label}: derived converter must verify");
            for threads in [1usize, 2, 8] {
                let mut eng_ms = f64::INFINITY;
                let mut out = None;
                for _ in 0..3 {
                    let t = Instant::now();
                    let o = converter_verdict_with(&b, &service, &q.converter, threads).unwrap();
                    eng_ms = eng_ms.min(t.elapsed().as_secs_f64() * 1e3);
                    out = Some(o);
                }
                let (verdict, stats) = out.unwrap();
                assert!(verdict.is_ok(), "{label}: engines must agree");
                println!(
                    "{:>14} {:>8} {:>10.3} {:>10.3} {:>9.2}x {:>8} {:>8} {:>6} {:>8} {:>10.1}",
                    label,
                    threads,
                    ref_ms,
                    eng_ms,
                    ref_ms / eng_ms,
                    stats.states,
                    stats.transitions,
                    stats.hubs,
                    stats.pairs,
                    stats.arena_bytes as f64 / 1024.0
                );
            }
        }
    }

    println!("\n== EXP-K: mod-k sequence-number scaling (input growth) ==");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "k", "|B| states", "C states", "exists", "total ms"
    );
    for k in [2usize, 3, 4] {
        // Converter between mod-k ABP sender and the NS receiver,
        // co-located (generalising the paper's Fig. 13 problem).
        let sender = protoquot_protocols::modk_sender(k);
        let msgs = protoquot_protocols::modk_messages(k);
        let msg_refs: Vec<&str> = msgs.iter().map(String::as_str).collect();
        let ch = protoquot_protocols::duplex_lossy_channel("ch", &msg_refs, "t_A");
        let n1 = protoquot_protocols::ns_receiver();
        let b = protoquot_spec::compose_all(&[&sender, &ch, &n1]).unwrap();
        let mut int_names: Vec<String> = Vec::new();
        for i in 0..k {
            int_names.push(format!("+d{i}"));
            int_names.push(format!("-a{i}"));
        }
        int_names.push("+D".into());
        int_names.push("-A".into());
        let int: protoquot_spec::Alphabet = int_names.iter().map(String::as_str).collect();
        let t = Instant::now();
        let r = solve(&b, &exactly_once(), &int);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        match r {
            Ok(q) => println!(
                "{:>6} {:>12} {:>12} {:>12} {:>12.3}",
                k,
                b.num_states(),
                q.converter.num_states(),
                "yes",
                ms
            ),
            Err(_) => println!(
                "{:>6} {:>12} {:>12} {:>12} {:>12.3}",
                k,
                b.num_states(),
                "-",
                "no",
                ms
            ),
        }
    }

    println!("\n== EXP-NAK: corruption instead of loss (extension) ==");
    {
        use protoquot_protocols::{nak_system_fully_corrupting, nak_system_half_corrupting};
        let half = nak_system_half_corrupting();
        let fullc = nak_system_fully_corrupting();
        println!(
            "half-corrupting NAK system ({} states): exactly-once = {}",
            half.num_states(),
            protoquot_spec::satisfies(&half, &exactly_once())
                .unwrap()
                .is_ok()
        );
        println!(
            "fully-corrupting NAK system ({} states): exactly-once = {}, at-least-once = {}",
            fullc.num_states(),
            protoquot_spec::satisfies(&fullc, &exactly_once())
                .unwrap()
                .is_ok(),
            protoquot_spec::satisfies(&fullc, &protoquot_protocols::at_least_once())
                .unwrap()
                .is_ok()
        );
        let cfg = protoquot_protocols::ab_to_nak_configuration();
        match solve(&cfg.b, &exactly_once(), &cfg.int) {
            Ok(q) => println!(
                "AB→NAK conversion (direct responses): converter DERIVED ({} states)",
                q.converter.num_states()
            ),
            Err(e) => println!("AB→NAK conversion: UNEXPECTED {e}"),
        }
    }

    println!("\n== EXP-DUPLEX: one converter, both directions (extension) ==");
    {
        let cfg = protoquot_protocols::duplex_configuration();
        let service = protoquot_protocols::duplex_service();
        let t = Instant::now();
        match solve(&cfg.b, &service, &cfg.int) {
            Ok(q) => println!(
                "B = {} states, |Int| = {}: bidirectional converter DERIVED \
                 ({} states, {} transitions; safety {} states) in {:.1} ms",
                cfg.b.num_states(),
                cfg.int.len(),
                q.converter.num_states(),
                q.converter.num_external(),
                q.stats.safety_states,
                t.elapsed().as_secs_f64() * 1e3
            ),
            Err(e) => println!("duplex: UNEXPECTED {e}"),
        }
    }

    println!("\n== EXP-FLOW: window flow control (extension) ==");
    {
        use protoquot_protocols::flow_control_configuration;
        use protoquot_protocols::service::windowed as win;
        for (w, c) in [(1usize, 1usize), (2, 2), (3, 2)] {
            let cfg = flow_control_configuration(w, c);
            let t = Instant::now();
            match solve(&cfg.b, &win(w), &cfg.int) {
                Ok(q) => println!(
                    "w={w} cap={c}: B = {} states -> converter {} states / {} transitions \
                     (safety {}) in {:.1} ms",
                    cfg.b.num_states(),
                    q.converter.num_states(),
                    q.converter.num_external(),
                    q.stats.safety_states,
                    t.elapsed().as_secs_f64() * 1e3
                ),
                Err(e) => println!("w={w} cap={c}: UNEXPECTED {e}"),
            }
        }
    }

    println!("\n== EXP-FRONT: the §6 front man (extension) ==");
    {
        let cfg = protoquot_protocols::frontman_configuration();
        let service = protoquot_protocols::two_client_service();
        match solve(&cfg.b, &service, &cfg.int) {
            Ok(q) => println!(
                "B = {} states: front-man converter DERIVED ({} states / {} transitions); \
                 native traffic untouched by construction",
                cfg.b.num_states(),
                q.converter.num_states(),
                q.converter.num_external()
            ),
            Err(e) => println!("front man: UNEXPECTED {e}"),
        }
    }

    println!("\n== EXP-R1: gateway loopback relay throughput ==");
    {
        // The Fig. 14 derived converter executed live: fleet-style
        // faulted schedules relayed frame by frame through the
        // session-multiplexed gateway, with the online conformance
        // guard checking every frame against the compiled B ‖ C
        // product. Accepted events per second, loopback transport.
        println!(
            "{:>8} {:>8} {:>12} {:>14}",
            "threads", "runs", "frames", "events/sec"
        );
        for threads in [1usize, 2, 8] {
            let (events_per_sec, frames) = loopback_throughput(threads, 400);
            println!(
                "{threads:>8} {:>8} {frames:>12} {events_per_sec:>14.0}",
                400
            );
        }
    }

    println!("\n== EXP-R2: guard determinization — gateway capacity pump ==");
    {
        // How fast the runtime itself takes frames once the simulator
        // is out of the loop: a sampled accepted trace pumped through
        // the full loopback wire path, determinized DFA guard vs the
        // subset-replaying reference oracle. The reference cells pump
        // fewer frames — they are two to three orders slower per frame.
        let cfg = protoquot_protocols::colocated_configuration();
        let q = solve(&cfg.b, &exactly_once(), &cfg.int).unwrap();
        let prog = GuardProgram::new(&[&cfg.b, &q.converter], &exactly_once()).unwrap();
        println!("colocated guard: {}", prog.build_stats());
        let sym = symmetric_configuration();
        let qs = solve(&sym.b, &at_least_once(), &sym.int).unwrap();
        let ps = GuardProgram::new(&[&sym.b, &qs.converter], &at_least_once()).unwrap();
        println!("EXP-W/sym guard: {}", ps.build_stats());
        println!(
            "{:>12} {:>10} {:>8} {:>12} {:>14}",
            "system", "guard", "threads", "frames", "events/sec"
        );
        for (label, reference, sessions, trace_len) in [
            ("dfa", false, 16u64, 4_096usize),
            ("reference", true, 4, 512),
        ] {
            for threads in [1usize, 2, 8] {
                let (events_per_sec, frames) =
                    pump_throughput(threads, reference, sessions, trace_len);
                println!(
                    "{:>12} {label:>10} {threads:>8} {frames:>12} {events_per_sec:>14.0}",
                    "colocated"
                );
            }
        }
        // The symmetric system is where determinization earns its keep:
        // its composite subsets reach four digits, so the reference
        // oracle pays a τ-closure over a thousand-state frontier per
        // frame while the DFA still pays one table load.
        for (label, reference, sessions, trace_len) in [
            ("dfa", false, 16u64, 4_096usize),
            ("reference", true, 1, 128),
        ] {
            let (events_per_sec, frames) = pump_throughput_on(
                &sym.b,
                &qs.converter,
                &at_least_once(),
                1,
                reference,
                sessions,
                trace_len,
            );
            println!(
                "{:>12} {label:>10} {:>8} {frames:>12} {events_per_sec:>14.0}",
                "EXP-W/sym", 1
            );
        }
    }

    println!("\n== EXP-R3: reactor concurrency — events/s and memory vs session count ==");
    {
        // How many *concurrent* sessions each transport architecture
        // carries, and at what cost: the blocking server pins one OS
        // thread to every connection, so its row is the thread-per-
        // connection price; the reactor multiplexes every session over
        // one socket served by a fixed loop pool. RSS deltas cover the
        // whole process (client and server are in-process here).
        println!(
            "{:>10} {:>10} {:>10} {:>12} {:>14} {:>12}",
            "transport", "sessions", "sockets", "frames", "events/sec", "rss KiB"
        );
        for &sessions in &[1_000u64, 10_000, 100_000] {
            let (evps, frames, rss) = reactor_concurrency_row(sessions, 8);
            println!(
                "{:>10} {sessions:>10} {:>10} {frames:>12} {evps:>14.0} {rss:>12}",
                "reactor", 1
            );
            // Thread-per-connection runs out of OS threads long before
            // 100k; measure it only where it can actually stand up.
            if sessions <= 1_000 {
                let (evps, frames, rss) = blocking_concurrency_row(sessions, 8);
                println!(
                    "{:>10} {sessions:>10} {sessions:>10} {frames:>12} {evps:>14.0} {rss:>12}",
                    "blocking"
                );
            } else {
                println!(
                    "{:>10} {sessions:>10} {sessions:>10} {:>12} {:>14} {:>12}",
                    "blocking", "-", "-", "(thread-per-conn)"
                );
            }
        }
    }

    println!("\n== EXP-R5: batched dispatch — reactor pump, batched vs per-frame ==");
    {
        // The same reactor mux pump with the gateway's batched hot
        // path switched off: every readiness chunk is then dispatched
        // one frame at a time through `Gateway::call` with a boxed
        // responder and a waker round-trip per reply, exactly the
        // pre-batching runtime. The before/after ratio is the price
        // of per-frame dispatch the batch path eliminates — one shard
        // lookup, one session lock, one contiguous guard-DFA run per
        // session per readiness batch, replies coalesced into a
        // single buffered write.
        println!(
            "{:>10} {:>10} {:>12} {:>14} {:>14} {:>10}",
            "clients", "sessions", "frames", "per-frame/s", "batched/s", "speedup"
        );
        for &(clients, sessions) in &[(1usize, 256u64), (1, 1_024), (2, 512)] {
            let best = |batching: bool| {
                (0..2)
                    .map(|_| reactor_pump_throughput(clients, sessions, 256, batching))
                    .fold((0.0f64, 0u64), |acc, r| (acc.0.max(r.0), r.1))
            };
            let (per_frame, frames) = best(false);
            let (batched, _) = best(true);
            println!(
                "{clients:>10} {sessions:>10} {frames:>12} {per_frame:>14.0} \
                 {batched:>14.0} {:>9.2}x",
                batched / per_frame
            );
        }
    }

    println!("\n== EXP-S1: soak fleet throughput and mutation detection ==");
    {
        // The Fig. 14 derivation under a hostile schedule: loss bias,
        // duplication bias and periodic reordering, fully monitored.
        let cfg = protoquot_protocols::colocated_configuration();
        let q = solve(&cfg.b, &exactly_once(), &cfg.int).unwrap();
        let faults = FaultPlan::parse("loss,dup,reorder").unwrap();
        let fleet = FleetRunner::new(vec![cfg.b.clone(), q.converter.clone()], exactly_once());
        println!(
            "{:>8} {:>8} {:>12} {:>14} {:>12}",
            "threads", "runs", "steps", "steps/sec", "verdict"
        );
        for threads in [1usize, 2, 8] {
            let report = fleet.run(&FleetConfig {
                runs: 2_000,
                threads,
                seed: 0x50AB,
                max_steps: 1_000,
                faults: faults.clone(),
                ..FleetConfig::default()
            });
            println!(
                "{:>8} {:>8} {:>12} {:>14.0} {:>12}",
                threads,
                report.runs,
                report.total_steps,
                report.steps_per_sec,
                if report.is_conforming() {
                    "Conforming"
                } else {
                    "FAIL"
                }
            );
            assert!(report.is_conforming(), "derived converter must soak clean");
        }
        // One redirected transition must be caught, with a short
        // minimized counterexample.
        let broken = redirect_transition(&q.converter, 0).unwrap();
        let report = FleetRunner::new(vec![cfg.b, broken], exactly_once()).run(&FleetConfig {
            runs: 200,
            threads: 8,
            seed: 0x50AB,
            max_steps: 1_000,
            faults,
            ..FleetConfig::default()
        });
        match report.counterexamples.first() {
            Some(cx) => println!(
                "mutated converter (transition 0 redirected): caught as {} in run {}, \
                 minimized to {} actions / {} events",
                cx.verdict,
                cx.run,
                cx.schedule.len(),
                cx.events.len()
            ),
            None => println!("mutated converter: NOT CAUGHT (unexpected)"),
        }
        assert!(!report.is_conforming(), "mutated converter must be caught");
    }
}
