//! # protoquot-bench
//!
//! Benchmark harness and experiment reporting for the Calvert & Lam
//! SIGCOMM '89 reproduction. The criterion benches (one per experiment
//! id, see `DESIGN.md`) measure time; [`paper_report`] regenerates the
//! qualitative results — existence/non-existence, machine sizes, phase
//! statistics — recorded in `EXPERIMENTS.md`.
//!
//! Run `cargo run -p protoquot-bench --bin report` for the tables, and
//! `cargo bench` for the timings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use protoquot_core::{solve, verify_converter, QuotientError};
use protoquot_protocols::{
    ab_system, at_least_once, colocated_configuration, exactly_once, ns_system,
    symmetric_configuration,
};
use protoquot_spec::satisfies;
use std::fmt::Write as _;

/// Regenerates the paper's §5 results as a text report: the inputs'
/// sizes, both configurations' outcomes, the weakened-service variant,
/// and the formalization validations. Every line is re-derived, not
/// hard-coded.
pub fn paper_report() -> String {
    let mut out = String::new();
    let exact = exactly_once();
    let weak = at_least_once();

    writeln!(out, "== Calvert & Lam SIGCOMM '89 — experiment report ==").unwrap();

    // Formalization validation (Figures 7, 8, 10, 11).
    let ab = ab_system();
    let ns = ns_system();
    writeln!(
        out,
        "AB system (A0||Ach||A1): {} states; satisfies exactly-once: {}",
        ab.num_states(),
        satisfies(&ab, &exact).unwrap().is_ok()
    )
    .unwrap();
    writeln!(
        out,
        "NS system (N0||Nch||N1): {} states; satisfies exactly-once: {}; \
         satisfies at-least-once: {}",
        ns.num_states(),
        satisfies(&ns, &exact).unwrap().is_ok(),
        satisfies(&ns, &weak).unwrap().is_ok()
    )
    .unwrap();

    // EXP-F12: symmetric configuration.
    let sym = symmetric_configuration();
    writeln!(
        out,
        "symmetric B = A0||Ach||Nch||N1: {} states, |Int| = {}",
        sym.b.num_states(),
        sym.int.len()
    )
    .unwrap();
    match solve(&sym.b, &exact, &sym.int) {
        Err(QuotientError::NoProgressingConverter {
            safety_output,
            iterations,
            ..
        }) => {
            writeln!(
                out,
                "  EXP-F12: safety phase -> {} states / {} transitions (cf. Fig. 12); \
                 progress emptied it in {} iterations -> NO converter (paper agrees)",
                safety_output.num_states(),
                safety_output.num_external(),
                iterations
            )
            .unwrap();
        }
        other => writeln!(out, "  EXP-F12: UNEXPECTED {other:?}").unwrap(),
    }

    // EXP-F13/14: co-located configuration.
    let col = colocated_configuration();
    writeln!(
        out,
        "co-located B = A0||Ach||N1: {} states, |Int| = {}",
        col.b.num_states(),
        col.int.len()
    )
    .unwrap();
    match solve(&col.b, &exact, &col.int) {
        Ok(q) => {
            let verified = verify_converter(&col.b, &exact, &q.converter).is_ok();
            writeln!(
                out,
                "  EXP-F14: converter DERIVED -> {} states / {} transitions \
                 (safety {} states, progress removed {} in {} iterations); verified: {} \
                 (cf. Fig. 14)",
                q.converter.num_states(),
                q.converter.num_external(),
                q.stats.safety_states,
                q.stats.removed_states,
                q.stats.progress_iterations,
                verified
            )
            .unwrap();
        }
        Err(e) => writeln!(out, "  EXP-F14: UNEXPECTED failure {e}").unwrap(),
    }

    // EXP-W: weakened service on the symmetric configuration.
    match solve(&sym.b, &weak, &sym.int) {
        Ok(q) => writeln!(
            out,
            "  EXP-W: at-least-once service -> converter DERIVED for the symmetric \
             configuration ({} states); verified: {} (paper's §5 remark)",
            q.converter.num_states(),
            verify_converter(&sym.b, &weak, &q.converter).is_ok()
        )
        .unwrap(),
        Err(e) => writeln!(out, "  EXP-W: UNEXPECTED failure {e}").unwrap(),
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_regenerates_the_paper_results() {
        let r = paper_report();
        assert!(r.contains("EXP-F12"), "{r}");
        assert!(r.contains("NO converter"), "{r}");
        assert!(r.contains("converter DERIVED"), "{r}");
        assert!(!r.contains("UNEXPECTED"), "{r}");
    }
}
