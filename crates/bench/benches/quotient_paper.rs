//! EXP-F12 / EXP-F13/14 / EXP-W: the paper's §5 derivations, timed.
//!
//! * `symmetric/full(no-converter)` — the Figure 9 problem: safety
//!   phase builds the Figure 12 converter, progress proves
//!   non-existence;
//! * `colocated/full` — the Figure 13 problem: derives the Figure 14
//!   converter;
//! * `colocated/safety-only` / `colocated/progress-only` — the phase
//!   split (cf. §7: progress is cheap relative to safety);
//! * `weakened/full` — the at-least-once service on the symmetric
//!   configuration (§5 remark);
//! * `colocated/verify` — the independent satisfaction check;
//! * `colocated/prune` — the superfluous-behaviour pruning.

use criterion::{criterion_group, criterion_main, Criterion};
use protoquot_bench::paper_report;
use protoquot_core::{
    progress_phase, prune_useless, safety_phase, solve, verify_converter, SafetyLimits,
};
use protoquot_protocols::{
    at_least_once, colocated_configuration, exactly_once, symmetric_configuration,
};
use protoquot_spec::normalize;

fn bench_paper(c: &mut Criterion) {
    // Print the experiment report once, so `cargo bench` output doubles
    // as the paper-vs-measured record.
    println!("{}", paper_report());

    let sym = symmetric_configuration();
    let col = colocated_configuration();
    let exact = exactly_once();
    let weak = at_least_once();

    let mut g = c.benchmark_group("quotient_paper");
    g.sample_size(20);

    g.bench_function("symmetric/full(no-converter)", |b| {
        b.iter(|| {
            let r = solve(&sym.b, &exact, &sym.int);
            assert!(r.is_err());
        })
    });

    g.bench_function("colocated/full", |b| {
        b.iter(|| solve(&col.b, &exact, &col.int).unwrap())
    });

    let na = normalize(&exact);
    g.bench_function("colocated/safety-only", |b| {
        b.iter(|| {
            safety_phase(&col.b, &na, &col.int, false, SafetyLimits::default())
                .unwrap()
                .unwrap()
        })
    });

    let safety = safety_phase(&col.b, &na, &col.int, false, SafetyLimits::default())
        .unwrap()
        .unwrap();
    g.bench_function("colocated/progress-only", |b| {
        b.iter(|| progress_phase(&col.b, &na, &safety))
    });

    g.bench_function("weakened/full", |b| {
        b.iter(|| solve(&sym.b, &weak, &sym.int).unwrap())
    });

    let q = solve(&col.b, &exact, &col.int).unwrap();
    g.bench_function("colocated/verify", |b| {
        b.iter(|| verify_converter(&col.b, &exact, &q.converter).unwrap())
    });

    g.sample_size(10);
    g.bench_function("colocated/prune", |b| {
        b.iter(|| prune_useless(&col.b, &exact, &q.converter))
    });

    g.finish();
}

criterion_group!(benches, bench_paper);
criterion_main!(benches);
