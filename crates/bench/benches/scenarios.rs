//! The extension scenarios as benchmark targets: NAK conversion,
//! bidirectional duplex, window flow control, the §6 front man.

use criterion::{criterion_group, criterion_main, Criterion};
use protoquot_core::{solve, solve_with, QuotientOptions};
use protoquot_protocols::service::windowed;
use protoquot_protocols::{
    ab_to_nak_configuration, duplex_configuration, duplex_service, exactly_once,
    flow_control_configuration, frontman_configuration, two_client_service,
};

fn bench_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenarios");
    g.sample_size(10);

    let nak = ab_to_nak_configuration();
    g.bench_function("nak-conversion", |b| {
        b.iter(|| solve(&nak.b, &exactly_once(), &nak.int).unwrap())
    });

    let front = frontman_configuration();
    let front_srv = two_client_service();
    g.bench_function("frontman", |b| {
        b.iter(|| solve(&front.b, &front_srv, &front.int).unwrap())
    });

    let flow = flow_control_configuration(2, 2);
    let flow_srv = windowed(2);
    g.bench_function("flow-control-w2", |b| {
        b.iter(|| solve(&flow.b, &flow_srv, &flow.int).unwrap())
    });
    // The same scenario with the safety engine at 8 worker threads —
    // the derived converter is bit-identical, only the wall time moves.
    let threaded = QuotientOptions {
        safety_threads: 8,
        ..Default::default()
    };
    g.bench_function("flow-control-w2-8threads", |b| {
        b.iter(|| solve_with(&flow.b, &flow_srv, &flow.int, &threaded).unwrap())
    });

    let dup = duplex_configuration();
    let dup_srv = duplex_service();
    g.bench_function("duplex-bidirectional", |b| {
        b.iter(|| solve(&dup.b, &dup_srv, &dup.int).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
