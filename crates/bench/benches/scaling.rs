//! EXP-C1 / EXP-C2: the §7 complexity-shape claims.
//!
//! * `relay_chain/n` — benign linear family: quotient grows linearly;
//! * `nfa_blowup/n` — adversarial family: a small B (n+2 states) whose
//!   quotient has ~2^n states (NFA→DFA blowup inside the pair-set
//!   construction — the §7 worst case and the PSPACE-hardness in
//!   action);
//! * `toggle_puzzle/n` — a second stressor where B itself is the
//!   exponential object (subset-tracking over register valuations);
//! * `progress_vs_safety/w` — phase split on windowed services: the
//!   progress phase stays polynomial in the safety output's size;
//! * `safety_engine/...` — EXP-C4: the interned parallel engine against
//!   the reference transcription on the adversarial family, at 1, 2 and
//!   8 worker threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protoquot_core::solve;
use protoquot_core::{
    progress_phase, safety_engine, safety_phase, safety_phase_reference, SafetyLimits,
};
use protoquot_protocols::service::windowed;
use protoquot_protocols::{exactly_once, nfa_blowup, relay_chain, toggle_puzzle};
use protoquot_spec::normalize;

fn bench_scaling(c: &mut Criterion) {
    let na_exact = normalize(&exactly_once());

    let mut g = c.benchmark_group("relay_chain");
    for n in [2usize, 4, 8, 16] {
        let (b, int) = relay_chain(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| solve(&b, &exactly_once(), &int).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("nfa_blowup");
    g.sample_size(10);
    for n in [4usize, 6, 8, 10] {
        let (b, int) = nfa_blowup(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                safety_phase(&b, &na_exact, &int, false, SafetyLimits::default())
                    .unwrap()
                    .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("toggle_puzzle");
    g.sample_size(10);
    for n in [2usize, 3, 4, 5] {
        let (b, int) = toggle_puzzle(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                safety_phase(&b, &na_exact, &int, false, SafetyLimits::default())
                    .unwrap()
                    .unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("progress_vs_safety");
    g.sample_size(20);
    for w in [1usize, 2, 3] {
        let (b, int) = relay_chain(2 * w + 2);
        let na = normalize(&windowed(w));
        let safety = safety_phase(&b, &na, &int, false, SafetyLimits::default())
            .unwrap()
            .unwrap();
        g.bench_with_input(BenchmarkId::new("safety", w), &w, |bench, _| {
            bench.iter(|| {
                safety_phase(&b, &na, &int, false, SafetyLimits::default())
                    .unwrap()
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("progress", w), &w, |bench, _| {
            bench.iter(|| progress_phase(&b, &na, &safety))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("safety_engine");
    g.sample_size(10);
    let (b, int) = nfa_blowup(10);
    g.bench_function("reference/nfa-10", |bench| {
        bench.iter(|| {
            safety_phase_reference(&b, &na_exact, &int, false, SafetyLimits::default())
                .unwrap()
                .unwrap()
        })
    });
    for threads in [1usize, 2, 8] {
        g.bench_with_input(
            BenchmarkId::new("engine/nfa-10", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| {
                    safety_engine(&b, &na_exact, &int, false, SafetyLimits::default(), t)
                        .unwrap()
                        .unwrap()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
