//! EXP-F4 and the semantic machinery: sink-set analysis, normalization,
//! and the two-part satisfaction check on the paper's systems.

use criterion::{criterion_group, criterion_main, Criterion};
use protoquot_protocols::{ab_system, at_least_once, exactly_once, ns_system};
use protoquot_spec::{collapse_sinks, normalize, satisfies, Closures, SinkInfo, SpecBuilder};

/// A machine full of internal cycles (Figure 4's situation, scaled):
/// `n` two-state sink cycles hanging off a dispatcher.
fn sinky(n: usize) -> protoquot_spec::Spec {
    let mut b = SpecBuilder::new("sinky");
    let hub = b.state("hub");
    for i in 0..n {
        let c1 = b.state(&format!("c{i}a"));
        let c2 = b.state(&format!("c{i}b"));
        b.ext(hub, &format!("go{i}"), c1);
        b.int(c1, c2);
        b.int(c2, c1);
        b.ext(c1, &format!("f{i}"), hub);
        b.ext(c2, &format!("g{i}"), hub);
    }
    b.build().unwrap()
}

fn bench_semantics(c: &mut Criterion) {
    let ab = ab_system();
    let ns = ns_system();
    let exact = exactly_once();
    let weak = at_least_once();

    let mut g = c.benchmark_group("semantics");

    g.bench_function("sinks/collapse-fig4-x32", |b| {
        let s = sinky(32);
        b.iter(|| collapse_sinks(&s))
    });

    g.bench_function("sinks/detect-ab-system", |b| {
        b.iter(|| SinkInfo::compute(&ab))
    });

    g.bench_function("closures/ab-system", |b| b.iter(|| Closures::compute(&ab)));

    g.bench_function("normalize/ab-system", |b| b.iter(|| normalize(&ab)));
    g.bench_function("normalize/ns-system", |b| b.iter(|| normalize(&ns)));

    g.bench_function("satisfies/ab-vs-exactly-once(ok)", |b| {
        b.iter(|| satisfies(&ab, &exact).unwrap().is_ok())
    });
    g.bench_function("satisfies/ns-vs-exactly-once(violation)", |b| {
        b.iter(|| satisfies(&ns, &exact).unwrap().is_err())
    });
    g.bench_function("satisfies/ns-vs-at-least-once(ok)", |b| {
        b.iter(|| satisfies(&ns, &weak).unwrap().is_ok())
    });

    g.finish();
}

criterion_group!(benches, bench_semantics);
criterion_main!(benches);
