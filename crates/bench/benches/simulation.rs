//! Simulation-engine throughput: steps/second of the full conversion
//! pipeline (AB sender, lossy channel, derived converter, NS receiver)
//! under a service monitor, at several loss rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use protoquot_core::solve;
use protoquot_protocols::{
    ab_channel, ab_sender, colocated_configuration, exactly_once, ns_receiver,
};
use protoquot_sim::{run_monitored, SimConfig};

fn bench_simulation(c: &mut Criterion) {
    let cfg = colocated_configuration();
    let service = exactly_once();
    let converter = solve(&cfg.b, &service, &cfg.int).unwrap().converter;

    const STEPS: u64 = 10_000;
    let mut g = c.benchmark_group("simulation");
    g.throughput(Throughput::Elements(STEPS));
    for loss in [0u32, 5, 20] {
        g.bench_with_input(
            BenchmarkId::new("conversion-pipeline", loss),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    let report = run_monitored(
                        vec![ab_sender(), ab_channel(), converter.clone(), ns_receiver()],
                        &service,
                        &SimConfig {
                            seed: 1,
                            max_steps: STEPS,
                            internal_weights: vec![(1, loss)],
                        },
                    );
                    assert!(report.is_clean());
                    report
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
