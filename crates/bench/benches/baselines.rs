//! Top-down quotient vs the prior-work baselines on the paper's
//! co-located problem: what does handling progress cost, and how fast
//! are the methods that solve less?

use criterion::{criterion_group, criterion_main, Criterion};
use protoquot_baselines::{okumura_converter, submodule_construction};
use protoquot_core::solve;
use protoquot_protocols::{ab_receiver, colocated_configuration, exactly_once};
use protoquot_spec::{Alphabet, EventId, SpecBuilder};

fn bench_baselines(c: &mut Criterion) {
    let cfg = colocated_configuration();
    let exact = exactly_once();

    let mut g = c.benchmark_group("baselines");
    g.sample_size(30);

    g.bench_function("quotient/full(safety+progress)", |b| {
        b.iter(|| solve(&cfg.b, &exact, &cfg.int).unwrap())
    });

    g.bench_function("merlin-bochmann/safety-only", |b| {
        b.iter(|| submodule_construction(&cfg.b, &exact, &cfg.int).unwrap())
    });

    // Okumura's construction works on the (much smaller) protocol
    // halves rather than the composed B — fast, but it neither sees the
    // service nor guarantees global correctness.
    let del = EventId::new("del");
    let xfer = EventId::new("xfer");
    let p_half = ab_receiver().rename_event(del, xfer).unwrap();
    let q_half = {
        let mut qb = SpecBuilder::new("Q0-direct");
        let q0 = qb.state("q0");
        let q1 = qb.state("q1");
        let q2 = qb.state("q2");
        qb.ext(q0, "xfer", q1);
        qb.ext(q1, "+D", q2);
        qb.ext(q2, "-A", q0);
        qb.build().unwrap()
    };
    let seed = {
        let mut sb = SpecBuilder::new("seed");
        let s0 = sb.state("s0");
        let s1 = sb.state("s1");
        let s2 = sb.state("s2");
        sb.ext(s0, "xfer", s1);
        sb.ext(s1, "-A", s2);
        sb.ext(s2, "-a0", s0);
        sb.ext(s2, "-a1", s0);
        sb.ext(s0, "-a0", s0);
        sb.ext(s0, "-a1", s0);
        sb.build().unwrap()
    };
    let hide = Alphabet::from_names(["xfer"]);
    g.bench_function("okumura/coupled-halves", |b| {
        b.iter(|| okumura_converter(&p_half, &q_half, &seed, &hide).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
