//! Ablations over the solver's knobs on the paper's co-located problem:
//! vacuous-state inclusion, progress strategy, constraint folding.

use criterion::{criterion_group, criterion_main, Criterion};
use protoquot_core::{solve_constrained, solve_with, ProgressStrategy, QuotientOptions};
use protoquot_protocols::{colocated_configuration, exactly_once};
use protoquot_spec::SpecBuilder;

fn bench_ablation(c: &mut Criterion) {
    let cfg = colocated_configuration();
    let service = exactly_once();
    let base = QuotientOptions::default();

    let mut g = c.benchmark_group("ablation");
    g.sample_size(30);

    g.bench_function("lean(default)", |b| {
        b.iter(|| solve_with(&cfg.b, &service, &cfg.int, &base).unwrap())
    });

    let vac = QuotientOptions {
        include_vacuous: true,
        ..base.clone()
    };
    g.bench_function("with-vacuous-states", |b| {
        b.iter(|| solve_with(&cfg.b, &service, &cfg.int, &vac).unwrap())
    });

    let reach = QuotientOptions {
        strategy: ProgressStrategy::ReachableProduct,
        ..base.clone()
    };
    g.bench_function("reachable-product-progress", |b| {
        b.iter(|| solve_with(&cfg.b, &service, &cfg.int, &reach).unwrap())
    });

    // Constraint folding: the +D/-A alternation constraint.
    let k = {
        let mut kb = SpecBuilder::new("K");
        let k0 = kb.state("k0");
        let k1 = kb.state("k1");
        kb.ext(k0, "+D", k1);
        kb.ext(k1, "-A", k0);
        for e in ["+d0", "+d1", "-a0", "-a1"] {
            kb.ext(k0, e, k0);
        }
        kb.build().unwrap()
    };
    g.bench_function("constrained(+D/-A alternation)", |b| {
        b.iter(|| solve_constrained(&cfg.b, &k, &service, &cfg.int).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
