//! The composition operator on the paper's configurations and the
//! scaling family: reachable-product construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use protoquot_protocols::{
    ab_channel, ab_receiver, ab_sender, modk_system, ns_channel, ns_receiver,
};
use protoquot_spec::{compose, compose_all, compose_full};

fn bench_composition(c: &mut Criterion) {
    let a0 = ab_sender();
    let ach = ab_channel();
    let a1 = ab_receiver();
    let nch = ns_channel();
    let n1 = ns_receiver();

    let mut g = c.benchmark_group("composition");

    g.bench_function("binary/A0||Ach", |b| b.iter(|| compose(&a0, &ach)));
    g.bench_function("binary/full-product/A0||Ach", |b| {
        b.iter(|| compose_full(&a0, &ach))
    });
    g.bench_function("nary/AB-system", |b| {
        b.iter(|| compose_all(&[&a0, &ach, &a1]).unwrap())
    });
    g.bench_function("nary/symmetric-configuration", |b| {
        b.iter(|| compose_all(&[&a0, &ach, &nch, &n1]).unwrap())
    });
    g.finish();

    let mut g = c.benchmark_group("modk_system");
    for k in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, &k| {
            bench.iter(|| modk_system(k))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_composition);
criterion_main!(benches);
