//! Lam's projection / image-protocol method (IEEE ToSE '88), as
//! characterised in §2 of the Calvert–Lam paper.
//!
//! Idea: find a *projection* of each existing protocol system onto a
//! common image protocol. If both systems project onto the same image,
//! the image defines the service of the conversion system and a simple
//! **stateless** converter (a message relabelling) follows.
//!
//! A projection is given by a state aggregation (concrete state →
//! image state) and an event mapping (concrete event → image event, or
//! hidden). The projection is *faithful* when hidden events never
//! change the image state — then the image is an ordinary specification
//! whose transitions are exactly the mapped concrete ones.

use protoquot_spec::{bisimilar, spec_from_parts, EventId, Spec, SpecBuilder, SpecError, StateId};
use std::collections::HashMap;

/// A projection: state aggregation + event mapping, both by name.
#[derive(Clone, Debug, Default)]
pub struct Projection {
    /// Concrete state name → image state name. States not listed keep
    /// their own name.
    pub state_map: HashMap<String, String>,
    /// Concrete event name → image event name (`None` hides the
    /// event). Events not listed keep their own name.
    pub event_map: HashMap<String, Option<String>>,
}

impl Projection {
    /// Convenience constructor from name pairs.
    pub fn new(states: &[(&str, &str)], events: &[(&str, Option<&str>)]) -> Projection {
        Projection {
            state_map: states
                .iter()
                .map(|&(a, b)| (a.to_owned(), b.to_owned()))
                .collect(),
            event_map: events
                .iter()
                .map(|&(a, b)| (a.to_owned(), b.map(str::to_owned)))
                .collect(),
        }
    }

    fn image_state<'a>(&'a self, name: &'a str) -> &'a str {
        self.state_map.get(name).map(String::as_str).unwrap_or(name)
    }

    fn image_event(&self, e: EventId) -> Option<EventId> {
        match self.event_map.get(&e.name()) {
            Some(Some(img)) => Some(EventId::new(img)),
            Some(None) => None,
            None => Some(e),
        }
    }
}

/// Why a projection is not faithful.
#[derive(Debug)]
pub enum ProjectionError {
    /// A hidden (or internal) transition crosses image states — the
    /// image would need internal transitions and is not a clean image
    /// protocol.
    HiddenCrossesImage {
        /// Source concrete state.
        from: String,
        /// Target concrete state.
        to: String,
    },
    /// The underlying spec construction failed.
    Spec(SpecError),
}

impl std::fmt::Display for ProjectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProjectionError::HiddenCrossesImage { from, to } => write!(
                f,
                "hidden transition {from} → {to} crosses image states; \
                 the aggregation is not a faithful image"
            ),
            ProjectionError::Spec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ProjectionError {}

/// Computes the image of `spec` under `proj`, checking faithfulness.
pub fn project(spec: &Spec, proj: &Projection, image_name: &str) -> Result<Spec, ProjectionError> {
    // Image states in first-seen order.
    let mut index: HashMap<String, StateId> = HashMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut id_of = |name: &str, names: &mut Vec<String>| -> StateId {
        if let Some(&id) = index.get(name) {
            return id;
        }
        let id = StateId(names.len() as u32);
        index.insert(name.to_owned(), id);
        names.push(name.to_owned());
        id
    };
    let mut image_of = vec![StateId(0); spec.num_states()];
    for s in spec.states() {
        image_of[s.index()] = id_of(proj.image_state(spec.state_name(s)), &mut names);
    }

    let mut ext = Vec::new();
    let mut alphabet = protoquot_spec::Alphabet::new();
    for (s, e, t) in spec.external_transitions() {
        match proj.image_event(e) {
            Some(img) => {
                alphabet.insert(img);
                ext.push((image_of[s.index()], img, image_of[t.index()]));
            }
            None => {
                if image_of[s.index()] != image_of[t.index()] {
                    return Err(ProjectionError::HiddenCrossesImage {
                        from: spec.state_name(s).to_owned(),
                        to: spec.state_name(t).to_owned(),
                    });
                }
            }
        }
    }
    for (s, t) in spec.internal_transitions() {
        if image_of[s.index()] != image_of[t.index()] {
            return Err(ProjectionError::HiddenCrossesImage {
                from: spec.state_name(s).to_owned(),
                to: spec.state_name(t).to_owned(),
            });
        }
    }
    // Alphabet: every image of a declared event.
    for e in spec.alphabet().iter() {
        if let Some(img) = proj.image_event(e) {
            alphabet.insert(img);
        }
    }
    spec_from_parts(
        image_name.to_owned(),
        alphabet,
        names,
        image_of[spec.initial().index()],
        ext,
        Vec::new(),
    )
    .map_err(ProjectionError::Spec)
}

/// Checks whether two image protocols coincide (strong bisimilarity —
/// the images are deterministic in practice, where this equals
/// language equality).
pub fn common_image(p_image: &Spec, q_image: &Spec) -> bool {
    bisimilar(p_image, q_image)
}

/// Builds the stateless converter induced by a common image: for each
/// `(receive, send)` pair, the converter takes `receive` from the P
/// side and immediately issues `send` on the Q side. "Stateless" in
/// Lam's sense: no protocol state beyond the in-flight message.
pub fn stateless_converter(pairs: &[(&str, &str)]) -> Spec {
    let mut b = SpecBuilder::new("C-stateless");
    let idle = b.state("idle");
    for &(recv, send) in pairs {
        let holding = b.state(&format!("got_{recv}"));
        b.ext(idle, recv, holding);
        b.ext(holding, send, idle);
    }
    b.initial(idle);
    b.build().expect("stateless converter is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{has_trace, trace_of};

    /// A two-phase protocol whose retransmission structure projects
    /// onto a simple request/response image.
    fn concrete() -> Spec {
        let mut b = SpecBuilder::new("P");
        let idle = b.state("idle");
        let sent1 = b.state("sent1");
        let sent2 = b.state("sent2");
        let done = b.state("done");
        b.ext(idle, "send_v1", sent1);
        b.ext(idle, "send_v2", sent2);
        b.ext(sent1, "retry", sent1);
        b.ext(sent1, "ok1", done);
        b.ext(sent2, "ok2", done);
        b.ext(done, "reset", idle);
        b.build().unwrap()
    }

    fn proj() -> Projection {
        Projection::new(
            &[("sent1", "sent"), ("sent2", "sent")],
            &[
                ("send_v1", Some("send")),
                ("send_v2", Some("send")),
                ("ok1", Some("ok")),
                ("ok2", Some("ok")),
                ("retry", None),
            ],
        )
    }

    #[test]
    fn faithful_projection_produces_image() {
        let img = project(&concrete(), &proj(), "image").unwrap();
        assert_eq!(img.num_states(), 3); // idle, sent, done
        assert!(has_trace(&img, &trace_of(&["send", "ok", "reset"])));
        assert!(!has_trace(&img, &trace_of(&["ok"])));
    }

    #[test]
    fn hidden_crossing_rejected() {
        // Hiding ok1 makes sent1 → done a hidden crossing.
        let mut p = proj();
        p.event_map.insert("ok1".into(), None);
        match project(&concrete(), &p, "image") {
            Err(ProjectionError::HiddenCrossesImage { from, to }) => {
                assert_eq!(from, "sent1");
                assert_eq!(to, "done");
            }
            other => panic!("expected crossing error, got {other:?}"),
        }
    }

    #[test]
    fn common_image_detected() {
        // A second concrete protocol with different event names but the
        // same image under its own projection.
        let mut b = SpecBuilder::new("Q");
        let i = b.state("i");
        let s = b.state("s");
        let d = b.state("d");
        b.ext(i, "xmit", s);
        b.ext(s, "ack", d);
        b.ext(d, "clear", i);
        let q = b.build().unwrap();
        let qp = Projection::new(
            &[],
            &[
                ("xmit", Some("send")),
                ("ack", Some("ok")),
                ("clear", Some("reset")),
            ],
        );
        let p_img = project(&concrete(), &proj(), "img").unwrap();
        let mut q_img = project(&q, &qp, "img").unwrap();
        // State names differ; bisimilarity doesn't care.
        assert!(common_image(&p_img, &q_img));
        // Destroying a transition breaks it.
        q_img = {
            let mut b = SpecBuilder::new("img");
            let i = b.state("i");
            let s = b.state("s");
            b.ext(i, "send", s);
            b.ext(s, "ok", i);
            b.event("reset");
            b.build().unwrap()
        };
        assert!(!common_image(&p_img, &q_img));
    }

    #[test]
    fn stateless_converter_relabels() {
        let c = stateless_converter(&[("+d0", "-D"), ("+d1", "-D")]);
        assert!(has_trace(&c, &trace_of(&["+d0", "-D", "+d1", "-D"])));
        assert!(!has_trace(&c, &trace_of(&["+d0", "+d1"])));
        assert_eq!(c.num_states(), 3);
    }
}
