//! # protoquot-baselines
//!
//! The prior-work converter-derivation methods the Calvert–Lam paper
//! positions itself against (§§1–2), implemented as comparison
//! baselines:
//!
//! * [`okumura`] — Okumura's bottom-up method (SIGCOMM '86): couple the
//!   *missing* protocol halves under a conversion seed, prune
//!   deadlocks. No service specification involved — success must still
//!   be checked globally, and can be hollow.
//! * [`projection`] — Lam's projection/common-image method (ToSE '88):
//!   if both protocol systems project faithfully onto a common image,
//!   a stateless (relabelling) converter follows.
//! * [`merlin_bochmann`] — submodule construction (TOPLAS '83): the
//!   quotient for *safety only*; its answers may deadlock, which is
//!   precisely the gap the paper's progress phase closes.
//!
//! The cited papers are not part of this reproduction's inputs; each
//! module documents the interpretation taken, which follows the
//! characterisation in Calvert & Lam §2. The comparisons reproduced are
//! the paper's *qualitative* ones (see the crate and integration
//! tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod merlin_bochmann;
pub mod okumura;
pub mod projection;

pub use merlin_bochmann::{submodule_construction, SubmoduleError};
pub use okumura::{okumura_converter, prune_deadlocks, OkumuraError};
pub use projection::{common_image, project, stateless_converter, Projection, ProjectionError};
