//! Okumura's bottom-up conversion method (SIGCOMM '86), as characterised
//! in §2 of the Calvert–Lam paper.
//!
//! Inputs are the *missing* halves of the two protocols — `P1` (the peer
//! the converter replaces toward `P0`) and `Q0` (toward `Q1`) — plus a
//! *conversion seed*: a partial specification over (a subset of) the
//! converter's events constraining how the two halves may be coupled.
//! The converter candidate is the synchronous product of the three
//! machines, with the seed-only coupling events hidden and deadlocking
//! states iteratively pruned.
//!
//! The crucial difference from the top-down quotient: the service
//! specification is **not** an input. If this method produces a
//! converter, the whole conversion system must still be checked against
//! the desired global service — and the paper's point is that it can
//! fail that check (see the crate tests, which reproduce exactly this
//! on the AB→NS example).

use protoquot_spec::{prune_unreachable, spec_from_parts, sync_product, Alphabet, Spec, StateId};

/// Outcome of the bottom-up construction.
#[derive(Debug)]
pub enum OkumuraError {
    /// Pruning deadlocks removed the initial state: the halves cannot
    /// be coupled under this seed.
    NoCoupling,
}

impl std::fmt::Display for OkumuraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "the protocol halves cannot be coupled under the given conversion seed"
        )
    }
}

impl std::error::Error for OkumuraError {}

/// Derives a converter candidate bottom-up.
///
/// * `p_half` — the missing peer of protocol P (its user-level events
///   already renamed to coupling events where the seed links them);
/// * `q_half` — the missing peer of protocol Q, likewise;
/// * `seed` — the conversion seed: a spec over coupling and/or message
///   events whose traces constrain the converter;
/// * `hide_events` — coupling events internal to the converter (e.g.
///   the renamed `del`→`xfer`→`acc` handoff), removed from its
///   interface.
pub fn okumura_converter(
    p_half: &Spec,
    q_half: &Spec,
    seed: &Spec,
    hide_events: &Alphabet,
) -> Result<Spec, OkumuraError> {
    let coupled = sync_product(&sync_product(p_half, q_half), seed);
    let hidden = protoquot_spec::hide(&coupled, hide_events);
    let pruned = prune_deadlocks(&hidden).ok_or(OkumuraError::NoCoupling)?;
    Ok(prune_unreachable(&pruned).with_name("C-okumura"))
}

/// Iteratively removes states with no outgoing transitions (and the
/// transitions into them) — Okumura's deadlock elimination. Returns
/// `None` if the initial state dies.
pub fn prune_deadlocks(spec: &Spec) -> Option<Spec> {
    let n = spec.num_states();
    let mut alive = vec![true; n];
    loop {
        let mut changed = false;
        for s in spec.states() {
            if !alive[s.index()] {
                continue;
            }
            let has_out = spec.external_from(s).iter().any(|&(_, t)| alive[t.index()])
                || spec.internal_from(s).iter().any(|&t| alive[t.index()]);
            if !has_out {
                alive[s.index()] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if !alive[spec.initial().index()] {
        return None;
    }
    let names: Vec<String> = spec
        .states()
        .map(|s| spec.state_name(s).to_owned())
        .collect();
    let ext = spec
        .external_transitions()
        .filter(|&(s, _, t)| alive[s.index()] && alive[t.index()])
        .collect();
    let int: Vec<(StateId, StateId)> = spec
        .internal_transitions()
        .filter(|&(s, t)| alive[s.index()] && alive[t.index()])
        .collect();
    Some(
        spec_from_parts(
            spec.name().to_owned(),
            spec.alphabet().clone(),
            names,
            spec.initial(),
            ext,
            int,
        )
        .expect("deadlock pruning preserves validity"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::SpecBuilder;

    #[test]
    fn deadlock_pruning_removes_traps() {
        let mut b = SpecBuilder::new("trap");
        let a = b.state("a");
        let good = b.state("good");
        let dead = b.state("dead");
        b.ext(a, "x", good);
        b.ext(good, "y", a);
        b.ext(a, "z", dead);
        let s = b.build().unwrap();
        let p = prune_deadlocks(&s).unwrap();
        assert_eq!(
            p.external_transitions()
                .filter(|&(_, e, _)| e.name() == "z")
                .count(),
            0
        );
    }

    #[test]
    fn cascading_deadlocks_pruned() {
        // a -> d1 -> d2 (both die once d2 dies).
        let mut b = SpecBuilder::new("cascade");
        let a = b.state("a");
        let d1 = b.state("d1");
        let d2 = b.state("d2");
        b.ext(a, "loop", a);
        b.ext(a, "x", d1);
        b.ext(d1, "y", d2);
        let s = b.build().unwrap();
        let p = prune_deadlocks(&s).unwrap();
        assert_eq!(p.num_external(), 1); // only the self-loop survives
    }

    #[test]
    fn fully_deadlocked_returns_none() {
        let mut b = SpecBuilder::new("dead");
        let a = b.state("a");
        let c = b.state("c");
        b.ext(a, "x", c);
        let s = b.build().unwrap();
        assert!(prune_deadlocks(&s).is_none());
    }

    #[test]
    fn coupling_two_relays() {
        // P-half consumes `+p` then hands over via `xfer`; Q-half takes
        // `xfer` then emits `-q`. Seed: unconstrained over xfer.
        let mut pb = SpecBuilder::new("P1");
        let p0 = pb.state("p0");
        let p1 = pb.state("p1");
        pb.ext(p0, "+p", p1);
        pb.ext(p1, "xfer", p0);
        let p = pb.build().unwrap();

        let mut qb = SpecBuilder::new("Q0");
        let q0 = qb.state("q0");
        let q1 = qb.state("q1");
        qb.ext(q0, "xfer", q1);
        qb.ext(q1, "-q", q0);
        let q = qb.build().unwrap();

        let mut sb = SpecBuilder::new("seed");
        let s0 = sb.state("s0");
        sb.ext(s0, "xfer", s0);
        let seed = sb.build().unwrap();

        let c = okumura_converter(&p, &q, &seed, &Alphabet::from_names(["xfer"])).unwrap();
        assert_eq!(c.alphabet(), &Alphabet::from_names(["+p", "-q"]));
        assert!(protoquot_spec::has_trace(
            &c,
            &protoquot_spec::trace_of(&["+p", "-q", "+p"])
        ));
        assert!(!protoquot_spec::has_trace(
            &c,
            &protoquot_spec::trace_of(&["-q"])
        ));
    }

    #[test]
    fn restrictive_seed_blocks_coupling() {
        // Same halves, but a seed that forbids xfer entirely: the
        // coupled machine deadlocks after +p and pruning kills it all.
        let mut pb = SpecBuilder::new("P1");
        let p0 = pb.state("p0");
        let p1 = pb.state("p1");
        pb.ext(p0, "+p", p1);
        pb.ext(p1, "xfer", p0);
        let p = pb.build().unwrap();
        let mut qb = SpecBuilder::new("Q0");
        let q0 = qb.state("q0");
        let q1 = qb.state("q1");
        qb.ext(q0, "xfer", q1);
        qb.ext(q1, "-q", q0);
        let q = qb.build().unwrap();
        let mut sb = SpecBuilder::new("seed");
        sb.state("s0");
        sb.event("xfer");
        let seed = sb.build().unwrap();
        let r = okumura_converter(&p, &q, &seed, &Alphabet::from_names(["xfer"]));
        assert!(matches!(r, Err(OkumuraError::NoCoupling)));
    }
}
