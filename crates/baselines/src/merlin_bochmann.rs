//! The Merlin–Bochmann "submodule construction" baseline (TOPLAS '83):
//! solves the quotient problem for **safety properties only**. As the
//! Calvert–Lam paper notes, this predates their contribution — the
//! paper's advance is handling *progress* as well.
//!
//! Implementation-wise this is the quotient's safety phase without the
//! progress phase, packaged with the same problem-statement validation.
//! Exposed so benches can measure the marginal cost of progress
//! (EXP-C2) and tests can exhibit systems where the safety-only answer
//! is wrong (a converter exists w.r.t. safety, but the conversion
//! system deadlocks).

use protoquot_core::safety::{safety_phase, SafetyLimits};
use protoquot_core::solver::validate_problem;
use protoquot_spec::{normalize, Alphabet, Spec, SpecError};

/// Why the safety-only construction failed.
#[derive(Debug)]
pub enum SubmoduleError {
    /// Malformed problem statement.
    BadProblem(SpecError),
    /// No safe converter exists at all.
    NoSafeConverter,
    /// State budget exceeded.
    Budget,
}

impl std::fmt::Display for SubmoduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmoduleError::BadProblem(e) => write!(f, "malformed problem: {e}"),
            SubmoduleError::NoSafeConverter => write!(f, "no safe converter exists"),
            SubmoduleError::Budget => write!(f, "state budget exceeded"),
        }
    }
}

impl std::error::Error for SubmoduleError {}

/// Derives the maximal converter that is correct **with respect to
/// safety only** — trace inclusion of `B ‖ C` in `A`. The result may
/// deadlock; use the full quotient for progress.
pub fn submodule_construction(b: &Spec, a: &Spec, int: &Alphabet) -> Result<Spec, SubmoduleError> {
    validate_problem(b, a, int).map_err(SubmoduleError::BadProblem)?;
    let na = normalize(a);
    match safety_phase(b, &na, int, false, SafetyLimits::default()) {
        Ok(Some(s)) => Ok(s.c0),
        Ok(None) => Err(SubmoduleError::Budget),
        Err(_) => Err(SubmoduleError::NoSafeConverter),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::{compose, satisfies, satisfies_safety, SpecBuilder, Violation};

    fn service() -> Spec {
        let mut sb = SpecBuilder::new("S");
        let u0 = sb.state("u0");
        let u1 = sb.state("u1");
        sb.ext(u0, "acc", u1);
        sb.ext(u1, "del", u0);
        sb.build().unwrap()
    }

    /// On a progress-friendly problem, safety-only output already
    /// satisfies the full service — the methods agree.
    #[test]
    fn agrees_with_quotient_when_progress_is_free() {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        let b2 = bb.state("b2");
        bb.ext(b0, "acc", b1);
        bb.ext(b1, "fwd", b2);
        bb.ext(b2, "del", b0);
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["fwd"]);
        let c = submodule_construction(&b, &service(), &int).unwrap();
        assert!(satisfies(&compose(&b, &c), &service()).unwrap().is_ok());
    }

    /// Where safety and progress conflict, the safety-only method
    /// "succeeds" with a converter that deadlocks — the limitation the
    /// Calvert–Lam paper addresses.
    #[test]
    fn safety_only_answer_can_deadlock() {
        // B deadlocks after acc; no Int event helps.
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        let b1 = bb.state("b1");
        bb.ext(b0, "acc", b1);
        bb.event("decoy");
        bb.event("del");
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["decoy"]);
        let c = submodule_construction(&b, &service(), &int).unwrap();
        let composite = compose(&b, &c);
        // Safe…
        assert!(satisfies_safety(&composite, &service()).unwrap().is_ok());
        // …but not progress-correct.
        assert!(matches!(
            satisfies(&composite, &service()).unwrap(),
            Err(Violation::Progress { .. })
        ));
        // The full quotient correctly reports non-existence.
        assert!(protoquot_core::solve(&b, &service(), &int).is_err());
    }

    #[test]
    fn unsafe_problem_rejected() {
        let mut bb = SpecBuilder::new("B");
        let b0 = bb.state("b0");
        bb.ext(b0, "del", b0);
        bb.event("acc");
        bb.event("m");
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["m"]);
        assert!(matches!(
            submodule_construction(&b, &service(), &int),
            Err(SubmoduleError::NoSafeConverter)
        ));
    }

    #[test]
    fn bad_problem_rejected() {
        let mut bb = SpecBuilder::new("B");
        bb.state("b0");
        let b = bb.build().unwrap();
        let int = Alphabet::from_names(["m"]);
        assert!(matches!(
            submodule_construction(&b, &service(), &int),
            Err(SubmoduleError::BadProblem(_))
        ));
    }
}
