//! The soak fleet: thousands of independent seeded, fault-injected,
//! fully monitored runs executed across worker threads.
//!
//! Each run `i` of a fleet gets its own deterministic seed
//! [`derive_seed`]`(base, i)`, its own [`Runner`], [`ServiceMonitor`],
//! [`ProgressWatchdog`] and fault state — runs share nothing mutable,
//! so the fleet parallelizes embarrassingly over the vendored
//! `threadpool`. Results are aggregated into a [`SoakReport`] that is
//! **invariant in the thread count**: verdict counts are sums, and
//! counterexamples are kept for the lowest-numbered failing runs, so
//! `--threads 1` and `--threads 8` produce the same report (modulo
//! wall-clock throughput). The differential test relies on this.
//!
//! Failing schedules are minimized with [`shrink_schedule`] before
//! reporting (ddmin; see [`crate::shrink`]).

use crate::engine::{derive_seed, Action, ExternalPolicy, Runner, System};
use crate::fault::FaultPlan;
use crate::monitor::{MonitorVerdict, ProgressVerdict, ProgressWatchdog, ServiceMonitor};
use crate::shrink::{shrink_schedule, FailureKind};
use protoquot_spec::{verify_system, Spec, SpecError, VerifyEngineStats, Violation};
use serde::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;
use threadpool::ThreadPool;

/// Outcome of one soak run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RunVerdict {
    /// The run completed its step budget without any violation.
    Conforming,
    /// The service monitor flagged a forbidden event.
    Safety,
    /// The run reached a global state with no enabled actions.
    Deadlock,
    /// The watchdog proved no acceptable service event is reachable.
    Livelock,
}

impl fmt::Display for RunVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunVerdict::Conforming => "Conforming",
            RunVerdict::Safety => "Safety",
            RunVerdict::Deadlock => "Deadlock",
            RunVerdict::Livelock => "Livelock",
        };
        f.write_str(s)
    }
}

/// A minimized failing run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// Fleet-level index of the failing run.
    pub run: u64,
    /// The run's derived seed (replayable).
    pub seed: u64,
    /// What went wrong.
    pub verdict: RunVerdict,
    /// The minimized schedule, rendered one action per entry
    /// (`τ:component` for internal moves, the event name otherwise).
    pub schedule: Vec<String>,
    /// Just the event names within the minimized schedule, in order —
    /// the externally visible shape of the failure.
    pub events: Vec<String>,
    /// `component:state` pinpoint of the stuck global state
    /// (deadlock/livelock only; empty for safety violations).
    pub pinpoint: Vec<String>,
}

impl Counterexample {
    fn to_value(&self) -> Value {
        let mut o = BTreeMap::new();
        o.insert("run".into(), Value::Int(self.run as i128));
        o.insert("seed".into(), Value::Int(self.seed as i128));
        o.insert("verdict".into(), Value::Str(self.verdict.to_string()));
        o.insert(
            "schedule".into(),
            Value::Arr(
                self.schedule
                    .iter()
                    .map(|s| Value::Str(s.clone()))
                    .collect(),
            ),
        );
        o.insert(
            "events".into(),
            Value::Arr(self.events.iter().map(|s| Value::Str(s.clone())).collect()),
        );
        o.insert(
            "pinpoint".into(),
            Value::Arr(
                self.pinpoint
                    .iter()
                    .map(|s| Value::Str(s.clone()))
                    .collect(),
            ),
        );
        Value::Obj(o)
    }
}

/// Configuration of a soak fleet.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of independent runs.
    pub runs: u64,
    /// Worker threads (1 = run inline on the caller).
    pub threads: usize,
    /// Fleet-level seed; run `i` uses `derive_seed(seed, i)`.
    pub seed: u64,
    /// Step budget per run.
    pub max_steps: u64,
    /// Fault models biasing every run's schedule.
    pub faults: FaultPlan,
    /// Service-silent steps before the watchdog probes.
    pub quiescence_threshold: u64,
    /// Global states explored per watchdog probe.
    pub probe_budget: usize,
    /// Keep at most this many (lowest-run-index) counterexamples.
    pub max_counterexamples: usize,
    /// Minimize failing schedules with ddmin before reporting.
    pub shrink: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            runs: 1_000,
            threads: 1,
            seed: 0xC0FFEE,
            max_steps: 2_000,
            faults: FaultPlan::none(),
            quiescence_threshold: 64,
            probe_budget: 20_000,
            max_counterexamples: 3,
            shrink: true,
        }
    }
}

/// Aggregated result of a soak fleet.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Runs executed.
    pub runs: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Fleet-level seed.
    pub seed: u64,
    /// Human-readable fault plan (`loss,dup` or `none`).
    pub faults: String,
    /// Runs that completed cleanly.
    pub conforming: u64,
    /// Runs flagged by the safety monitor.
    pub safety: u64,
    /// Runs that deadlocked.
    pub deadlock: u64,
    /// Runs the watchdog proved livelocked.
    pub livelock: u64,
    /// Scheduler steps summed over all runs.
    pub total_steps: u64,
    /// Wall-clock seconds for the whole fleet.
    pub elapsed_secs: f64,
    /// `total_steps / elapsed_secs`.
    pub steps_per_sec: f64,
    /// Minimized counterexamples (lowest failing run indices first, at
    /// most `max_counterexamples`).
    pub counterexamples: Vec<Counterexample>,
}

impl SoakReport {
    /// True if every run conformed.
    pub fn is_conforming(&self) -> bool {
        self.safety == 0 && self.deadlock == 0 && self.livelock == 0
    }

    /// The report as a JSON string (vendored serde shim).
    pub fn to_json(&self) -> String {
        let mut o = BTreeMap::new();
        o.insert("runs".into(), Value::Int(self.runs as i128));
        o.insert("threads".into(), Value::Int(self.threads as i128));
        o.insert("seed".into(), Value::Int(self.seed as i128));
        o.insert("faults".into(), Value::Str(self.faults.clone()));
        o.insert("conforming".into(), Value::Int(self.conforming as i128));
        o.insert("safety".into(), Value::Int(self.safety as i128));
        o.insert("deadlock".into(), Value::Int(self.deadlock as i128));
        o.insert("livelock".into(), Value::Int(self.livelock as i128));
        o.insert("total_steps".into(), Value::Int(self.total_steps as i128));
        o.insert("elapsed_secs".into(), Value::Float(self.elapsed_secs));
        o.insert("steps_per_sec".into(), Value::Float(self.steps_per_sec));
        o.insert(
            "verdict".into(),
            Value::Str(if self.is_conforming() {
                "Conforming".into()
            } else {
                "NonConforming".into()
            }),
        );
        o.insert(
            "counterexamples".into(),
            Value::Arr(
                self.counterexamples
                    .iter()
                    .map(Counterexample::to_value)
                    .collect(),
            ),
        );
        serde_json::to_string(&Value::Obj(o)).expect("report serialization cannot fail")
    }
}

impl fmt::Display for SoakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "soak: {} runs × ≤{} steps, {} threads, faults={}, seed={:#x}",
            self.runs,
            self.total_steps.checked_div(self.runs).unwrap_or(0),
            self.threads,
            self.faults,
            self.seed
        )?;
        writeln!(
            f,
            "verdicts: {} conforming, {} safety, {} deadlock, {} livelock",
            self.conforming, self.safety, self.deadlock, self.livelock
        )?;
        writeln!(
            f,
            "throughput: {} steps in {:.2}s = {:.0} steps/sec",
            self.total_steps, self.elapsed_secs, self.steps_per_sec
        )?;
        writeln!(
            f,
            "overall: {}",
            if self.is_conforming() {
                "Conforming"
            } else {
                "NON-CONFORMING"
            }
        )?;
        for cx in &self.counterexamples {
            writeln!(
                f,
                "counterexample (run {}, seed {:#x}, {}; {} actions / {} events):",
                cx.run,
                cx.seed,
                cx.verdict,
                cx.schedule.len(),
                cx.events.len()
            )?;
            writeln!(f, "  schedule: {}", cx.schedule.join(" "))?;
            if !cx.pinpoint.is_empty() {
                writeln!(f, "  stuck at: {}", cx.pinpoint.join(" ‖ "))?;
            }
        }
        Ok(())
    }
}

/// Result of one run, sent back from the workers.
struct RunResult {
    run: u64,
    steps: u64,
    verdict: RunVerdict,
    counterexample: Option<Counterexample>,
}

/// Executes soak fleets over a fixed set of components and a service.
pub struct FleetRunner {
    components: Arc<Vec<Spec>>,
    service: Arc<Spec>,
}

impl FleetRunner {
    /// A fleet over `components` (wired by event-name sharing, external
    /// events always enabled) monitored against `service`.
    pub fn new(components: Vec<Spec>, service: Spec) -> FleetRunner {
        FleetRunner {
            components: Arc::new(components),
            service: Arc::new(service),
        }
    }

    /// Static conformance oracle for the fleet: checks that the n-way
    /// composition of the components satisfies the service, on the
    /// compiled verification engine ([`protoquot_spec::verify_system`])
    /// — no composite `Spec` is materialized. The dynamic soak runs are
    /// sound with respect to this verdict: a conforming static system
    /// never produces fault-free violations.
    pub fn static_verdict(
        &self,
        threads: usize,
    ) -> Result<(Result<(), Violation>, VerifyEngineStats), SpecError> {
        let parts: Vec<&Spec> = self.components.iter().collect();
        let out = verify_system(&parts, &self.service, threads)?;
        Ok((out.verdict, out.stats))
    }

    /// Runs the fleet and aggregates the report.
    pub fn run(&self, config: &FleetConfig) -> SoakReport {
        let start = Instant::now();
        let threads = config.threads.max(1);
        let mut results: Vec<RunResult> = Vec::with_capacity(config.runs as usize);
        if threads == 1 {
            for run in 0..config.runs {
                results.push(soak_run(&self.components, &self.service, config, run));
            }
        } else {
            let pool = ThreadPool::new(threads);
            let (tx, rx) = mpsc::channel::<Vec<RunResult>>();
            // Contiguous chunks: worker-local counterexample caps stay
            // exact after the global merge (see below).
            let chunk = (config.runs).div_ceil(threads as u64).max(1);
            let mut sent = 0u64;
            let mut jobs = 0usize;
            while sent < config.runs {
                let lo = sent;
                let hi = (sent + chunk).min(config.runs);
                sent = hi;
                jobs += 1;
                let components = Arc::clone(&self.components);
                let service = Arc::clone(&self.service);
                let config = config.clone();
                let tx = tx.clone();
                pool.execute(move || {
                    let mut out = Vec::with_capacity((hi - lo) as usize);
                    let mut kept = 0usize;
                    for run in lo..hi {
                        let mut r = soak_run(&components, &service, &config, run);
                        // Cap shrink work per worker: the global merge
                        // keeps the lowest `max_counterexamples` run
                        // indices, and within a contiguous chunk those
                        // are always the chunk's first failures.
                        if r.counterexample.is_some() {
                            if kept >= config.max_counterexamples {
                                r.counterexample = None;
                            } else {
                                kept += 1;
                            }
                        }
                        out.push(r);
                    }
                    tx.send(out).expect("fleet aggregator hung up");
                });
            }
            drop(tx);
            for _ in 0..jobs {
                results.extend(rx.recv().expect("fleet worker died"));
            }
            pool.join();
        }
        // Thread-count invariance: aggregate in run order.
        results.sort_by_key(|r| r.run);
        let mut report = SoakReport {
            runs: config.runs,
            threads,
            seed: config.seed,
            faults: config.faults.to_string(),
            conforming: 0,
            safety: 0,
            deadlock: 0,
            livelock: 0,
            total_steps: 0,
            elapsed_secs: 0.0,
            steps_per_sec: 0.0,
            counterexamples: Vec::new(),
        };
        for r in results {
            report.total_steps += r.steps;
            match r.verdict {
                RunVerdict::Conforming => report.conforming += 1,
                RunVerdict::Safety => report.safety += 1,
                RunVerdict::Deadlock => report.deadlock += 1,
                RunVerdict::Livelock => report.livelock += 1,
            }
            if report.counterexamples.len() < config.max_counterexamples {
                if let Some(cx) = r.counterexample {
                    report.counterexamples.push(cx);
                }
            }
        }
        report.elapsed_secs = start.elapsed().as_secs_f64();
        report.steps_per_sec = if report.elapsed_secs > 0.0 {
            report.total_steps as f64 / report.elapsed_secs
        } else {
            0.0
        };
        report
    }
}

fn render_action(system: &System, action: &Action) -> String {
    match action {
        Action::Internal { component, .. } => {
            format!("τ:{}", system.components()[*component].name())
        }
        Action::Event { event, .. } => event.name(),
    }
}

/// One fully monitored, fault-injected run.
fn soak_run(components: &[Spec], service: &Spec, config: &FleetConfig, run: u64) -> RunResult {
    let seed = derive_seed(config.seed, run);
    let system = System::new(components.to_vec(), ExternalPolicy::AlwaysEnabled);
    let mut runner = Runner::new(system, seed);
    let mut monitor = ServiceMonitor::new(service);
    let mut watchdog = ProgressWatchdog::new(config.quiescence_threshold, config.probe_budget);
    let mut fault = config.faults.start(seed);
    let mut schedule: Vec<Action> = Vec::new();
    let mut verdict = RunVerdict::Conforming;
    let mut pinpoint: Vec<String> = Vec::new();
    while runner.steps() < config.max_steps {
        match runner.step_weighted(|a, base| fault.weigh(a, base)) {
            None => {
                verdict = RunVerdict::Deadlock;
                if let ProgressVerdict::Deadlock { states } =
                    ProgressWatchdog::deadlock(runner.system(), runner.states())
                {
                    pinpoint = states;
                }
                break;
            }
            Some(action) => {
                fault.note(&action);
                if let Action::Event { event, .. } = &action {
                    monitor.observe(*event);
                }
                watchdog.note(&action, &monitor);
                schedule.push(action);
                if matches!(monitor.verdict(), MonitorVerdict::SafetyViolation { .. }) {
                    verdict = RunVerdict::Safety;
                    break;
                }
                match watchdog.poll(runner.system(), runner.states(), &monitor) {
                    ProgressVerdict::Livelock { states } => {
                        verdict = RunVerdict::Livelock;
                        pinpoint = states;
                        break;
                    }
                    ProgressVerdict::Deadlock { states } => {
                        verdict = RunVerdict::Deadlock;
                        pinpoint = states;
                        break;
                    }
                    ProgressVerdict::Progressing => {}
                }
            }
        }
    }
    let steps = runner.steps();
    let counterexample = if verdict == RunVerdict::Conforming {
        None
    } else {
        let minimized = match (config.shrink, verdict) {
            (true, RunVerdict::Safety) => {
                shrink_schedule(runner.system(), service, &schedule, FailureKind::Safety)
            }
            (true, RunVerdict::Deadlock) => {
                shrink_schedule(runner.system(), service, &schedule, FailureKind::Deadlock)
            }
            // Livelock is a property of the reachable closure, not of a
            // finite prefix; report the raw schedule with the pinpoint.
            _ => schedule,
        };
        let rendered: Vec<String> = minimized
            .iter()
            .map(|a| render_action(runner.system(), a))
            .collect();
        let events: Vec<String> = minimized
            .iter()
            .filter_map(|a| match a {
                Action::Event { event, .. } => Some(event.name()),
                Action::Internal { .. } => None,
            })
            .collect();
        Some(Counterexample {
            run,
            seed,
            verdict,
            schedule: rendered,
            events,
            pinpoint,
        })
    };
    RunResult {
        run,
        steps,
        verdict,
        counterexample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::redirect_transition;
    use protoquot_spec::SpecBuilder;

    fn ping_pong() -> (Vec<Spec>, Spec) {
        let mut b = SpecBuilder::new("P");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "acc", s1);
        b.ext(s1, "del", s0);
        let machine = b.build().unwrap();
        let mut b = SpecBuilder::new("S");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        (vec![machine], b.build().unwrap())
    }

    #[test]
    fn clean_system_conforms() {
        let (components, service) = ping_pong();
        let fleet = FleetRunner::new(components, service);
        let report = fleet.run(&FleetConfig {
            runs: 50,
            max_steps: 200,
            ..FleetConfig::default()
        });
        assert!(report.is_conforming(), "{report}");
        assert_eq!(report.conforming, 50);
        assert_eq!(report.total_steps, 50 * 200);
        let json = report.to_json();
        assert!(json.contains("\"conforming\":50"), "{json}");
    }

    #[test]
    fn mutated_machine_is_caught_and_minimized() {
        let (components, service) = ping_pong();
        // Redirect `del`'s target so the machine can emit `del` twice.
        let broken = redirect_transition(&components[0], 1).unwrap();
        let fleet = FleetRunner::new(vec![broken], service);
        let report = fleet.run(&FleetConfig {
            runs: 20,
            max_steps: 200,
            ..FleetConfig::default()
        });
        assert!(!report.is_conforming());
        assert!(!report.counterexamples.is_empty());
        let cx = &report.counterexamples[0];
        assert_eq!(cx.verdict, RunVerdict::Safety);
        assert!(
            cx.events.len() <= 20,
            "counterexample not minimized: {:?}",
            cx.events
        );
    }

    #[test]
    fn static_verdict_agrees_with_soak_and_is_thread_invariant() {
        let (components, service) = ping_pong();
        let clean = FleetRunner::new(components.clone(), service.clone());
        let (verdict, stats) = clean.static_verdict(1).unwrap();
        assert!(verdict.is_ok());
        assert!(stats.pairs >= 2);

        let broken = redirect_transition(&components[0], 1).unwrap();
        let bad = FleetRunner::new(vec![broken], service);
        let (base, base_stats) = bad.static_verdict(1).unwrap();
        assert!(base.is_err(), "redirected delivery must fail statically");
        for threads in [2, 8] {
            let (v, mut s) = bad.static_verdict(threads).unwrap();
            assert_eq!(format!("{base:?}"), format!("{v:?}"));
            s.threads = base_stats.threads;
            assert_eq!(s, base_stats);
        }
    }

    #[test]
    fn report_is_thread_count_invariant() {
        let (components, service) = ping_pong();
        let broken = redirect_transition(&components[0], 1).unwrap();
        let fleet = FleetRunner::new(vec![broken], service);
        let base = FleetConfig {
            runs: 40,
            max_steps: 100,
            ..FleetConfig::default()
        };
        let one = fleet.run(&FleetConfig {
            threads: 1,
            ..base.clone()
        });
        let eight = fleet.run(&FleetConfig { threads: 8, ..base });
        assert_eq!(one.conforming, eight.conforming);
        assert_eq!(one.safety, eight.safety);
        assert_eq!(one.deadlock, eight.deadlock);
        assert_eq!(one.livelock, eight.livelock);
        assert_eq!(one.total_steps, eight.total_steps);
        assert_eq!(one.counterexamples, eight.counterexamples);
    }
}
