//! Online service monitoring: checks a running system's external trace
//! against a (normalized) service specification, flagging safety
//! violations the moment they occur, plus a [`ProgressWatchdog`] that
//! flags deadlock and livelock — the dynamic twin of the static
//! progress phase (`prog.a.⟨b,c⟩`, Fig. 6 of the paper).

use crate::engine::{Action, System};
use protoquot_spec::{normalize, EventId, NormalSpec, Spec, StateId};
use std::collections::{HashSet, VecDeque};

/// What the monitor observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// All observed events so far are consistent with the service.
    Conforming,
    /// The event at `position` (index into the observed trace) is not
    /// allowed by the service after the preceding trace.
    SafetyViolation {
        /// Offset of the offending event in the observed trace.
        position: usize,
        /// The offending event.
        event: EventId,
    },
}

/// Tracks ψ through the service as events are observed.
pub struct ServiceMonitor {
    service: NormalSpec,
    hub: usize,
    observed: Vec<EventId>,
    verdict: MonitorVerdict,
}

impl ServiceMonitor {
    /// Builds a monitor for `service` (normalized internally).
    pub fn new(service: &Spec) -> ServiceMonitor {
        let service = normalize(service);
        let hub = service.initial_hub();
        ServiceMonitor {
            service,
            hub,
            observed: Vec::new(),
            verdict: MonitorVerdict::Conforming,
        }
    }

    /// The service's alphabet — feed the monitor exactly these events.
    pub fn monitored_events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.service.spec().alphabet().iter()
    }

    /// True if `event` is one the monitor watches.
    pub fn watches(&self, event: EventId) -> bool {
        self.service.spec().alphabet().contains(event)
    }

    /// Observes one event. Events outside the service alphabet are
    /// ignored; after a violation further events are recorded but not
    /// tracked.
    pub fn observe(&mut self, event: EventId) {
        if !self.watches(event) {
            return;
        }
        let position = self.observed.len();
        self.observed.push(event);
        if self.verdict != MonitorVerdict::Conforming {
            return;
        }
        match self.service.step(self.hub, event) {
            Some(h) => self.hub = h,
            None => {
                self.verdict = MonitorVerdict::SafetyViolation { position, event };
            }
        }
    }

    /// The verdict so far.
    pub fn verdict(&self) -> &MonitorVerdict {
        &self.verdict
    }

    /// The observed (service-alphabet) trace.
    pub fn observed(&self) -> &[EventId] {
        &self.observed
    }

    /// Events the service could accept next (τ* of the current hub);
    /// empty after a violation.
    pub fn acceptable_next(&self) -> Vec<EventId> {
        if self.verdict != MonitorVerdict::Conforming {
            return Vec::new();
        }
        self.service.tau_star(self.hub).iter().collect()
    }
}

/// What the progress watchdog concluded about a quiescent system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgressVerdict {
    /// The system can still produce service-visible progress.
    Progressing,
    /// No action is enabled at all: the run is stuck for good.
    Deadlock {
        /// `component:state` names of the stuck global state.
        states: Vec<String>,
    },
    /// Actions remain enabled (τ-cycles, unproductive handshakes) but
    /// no acceptable service event is reachable from here: the system
    /// spins forever without ever serving its users.
    Livelock {
        /// `component:state` names of the livelocked global state.
        states: Vec<String>,
    },
}

/// Detects quiescence-based progress failures during a run.
///
/// The safety monitor ([`ServiceMonitor`]) can only flag events that
/// *do* happen; this watchdog flags the dual failure — service events
/// that stop happening. The static progress phase removes converter
/// states from which the composed system could settle into an internal
/// cycle outside every sink set of the service (Fig. 6); dynamically,
/// the same symptom is a run going *quiescent*: many scheduler steps
/// with no service-alphabet event. After `quiescence_threshold` such
/// steps the watchdog probes: a bounded breadth-first closure of the
/// current global state over all semantically enabled actions. If the
/// closure completes without reaching any event the service currently
/// accepts (`ServiceMonitor::acceptable_next`, i.e. τ* of the hub ψ),
/// the run is livelocked — a fair scheduler may merely be unlucky, but
/// no scheduler at all can produce progress from here. If the probe is
/// inconclusive (budget exhausted) the threshold backs off
/// exponentially so long healthy runs are not drowned in probes.
///
/// Note the probe walks *semantic* enablement ([`System::actions_into`])
/// — a τ-cycle that is escapable only through an event some partner
/// component never enables is still a livelock, even though the cycling
/// component's own sink analysis would see an escape. That asymmetry is
/// exactly what makes the dynamic check worth running next to the
/// static one.
pub struct ProgressWatchdog {
    base_threshold: u64,
    threshold: u64,
    probe_budget: usize,
    quiescent: u64,
}

impl ProgressWatchdog {
    /// A watchdog probing after `quiescence_threshold` service-silent
    /// steps, exploring at most `probe_budget` global states per probe.
    pub fn new(quiescence_threshold: u64, probe_budget: usize) -> ProgressWatchdog {
        let t = quiescence_threshold.max(1);
        ProgressWatchdog {
            base_threshold: t,
            threshold: t,
            probe_budget: probe_budget.max(1),
            quiescent: 0,
        }
    }

    /// Records one applied action. A monitored (service-alphabet) event
    /// resets the quiescence counter and the probe backoff; anything
    /// else deepens the quiescence.
    pub fn note(&mut self, action: &Action, monitor: &ServiceMonitor) {
        match action {
            Action::Event { event, .. } if monitor.watches(*event) => {
                self.quiescent = 0;
                self.threshold = self.base_threshold;
            }
            _ => self.quiescent += 1,
        }
    }

    /// Steps since the last service-visible event.
    pub fn quiescent_steps(&self) -> u64 {
        self.quiescent
    }

    /// Builds the deadlock verdict for a global state with no enabled
    /// actions (the runner reports that by returning `None`).
    pub fn deadlock(system: &System, states: &[StateId]) -> ProgressVerdict {
        ProgressVerdict::Deadlock {
            states: pinpoint(system, states),
        }
    }

    /// Checks the current global state, probing if quiescent for long
    /// enough. Cheap (one comparison) when no probe is due.
    pub fn poll(
        &mut self,
        system: &System,
        states: &[StateId],
        monitor: &ServiceMonitor,
    ) -> ProgressVerdict {
        if self.quiescent < self.threshold {
            return ProgressVerdict::Progressing;
        }
        // Probe due. Which events would count as progress?
        let targets: HashSet<EventId> = monitor.acceptable_next().into_iter().collect();
        if targets.is_empty() {
            // Safety already violated (handled elsewhere) — or a service
            // with a terminal state, where quiescence is legitimate.
            self.quiescent = 0;
            return ProgressVerdict::Progressing;
        }
        let mut seen: HashSet<Vec<StateId>> = HashSet::new();
        let mut queue: VecDeque<Vec<StateId>> = VecDeque::new();
        let mut actions: Vec<Action> = Vec::new();
        let mut truncated = false;
        seen.insert(states.to_vec());
        queue.push_back(states.to_vec());
        let mut first = true;
        while let Some(g) = queue.pop_front() {
            system.actions_into(&g, &mut actions);
            if first && actions.is_empty() {
                return ProgressVerdict::Deadlock {
                    states: pinpoint(system, states),
                };
            }
            first = false;
            for a in &actions {
                if let Action::Event { event, .. } = a {
                    if targets.contains(event) {
                        // Progress is reachable; the scheduler was just
                        // unlucky. Back off so a long quiescent-but-live
                        // run doesn't pay for a probe every few steps.
                        self.quiescent = 0;
                        self.threshold = self.threshold.saturating_mul(2);
                        return ProgressVerdict::Progressing;
                    }
                }
                let mut g2 = g.clone();
                match a {
                    Action::Internal { component, to } => g2[*component] = *to,
                    Action::Event { moves, .. } => {
                        for &(c, t) in moves {
                            g2[c] = t;
                        }
                    }
                }
                if seen.contains(&g2) {
                    continue;
                }
                if seen.len() >= self.probe_budget {
                    truncated = true;
                    continue;
                }
                seen.insert(g2.clone());
                queue.push_back(g2);
            }
        }
        if truncated {
            // The reachable set did not close within budget:
            // inconclusive. Back off and keep running.
            self.quiescent = 0;
            self.threshold = self.threshold.saturating_mul(2);
            return ProgressVerdict::Progressing;
        }
        ProgressVerdict::Livelock {
            states: pinpoint(system, states),
        }
    }
}

fn pinpoint(system: &System, states: &[StateId]) -> Vec<String> {
    system
        .components()
        .iter()
        .zip(states)
        .map(|(c, &s)| format!("{}:{}", c.name(), c.state_name(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::SpecBuilder;

    fn service() -> Spec {
        let mut b = SpecBuilder::new("S");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        b.build().unwrap()
    }

    #[test]
    fn conforming_run() {
        let mut m = ServiceMonitor::new(&service());
        for e in ["acc", "del", "acc", "del"] {
            m.observe(EventId::new(e));
        }
        assert_eq!(*m.verdict(), MonitorVerdict::Conforming);
        assert_eq!(m.observed().len(), 4);
        assert_eq!(m.acceptable_next(), vec![EventId::new("acc")]);
    }

    #[test]
    fn violation_flagged_at_position() {
        let mut m = ServiceMonitor::new(&service());
        m.observe(EventId::new("acc"));
        m.observe(EventId::new("del"));
        m.observe(EventId::new("del"));
        assert_eq!(
            *m.verdict(),
            MonitorVerdict::SafetyViolation {
                position: 2,
                event: EventId::new("del")
            }
        );
        assert!(m.acceptable_next().is_empty());
        // Later events don't change the verdict.
        m.observe(EventId::new("acc"));
        assert!(matches!(
            m.verdict(),
            MonitorVerdict::SafetyViolation { position: 2, .. }
        ));
    }

    #[test]
    fn unwatched_events_ignored() {
        let mut m = ServiceMonitor::new(&service());
        m.observe(EventId::new("noise"));
        assert_eq!(m.observed().len(), 0);
        assert!(!m.watches(EventId::new("noise")));
        assert!(m.watches(EventId::new("acc")));
    }

    use crate::engine::{ExternalPolicy, Runner, System};

    fn tick_service() -> Spec {
        let mut b = SpecBuilder::new("ticker");
        let u0 = b.state("u0");
        b.ext(u0, "tick", u0);
        b.build().unwrap()
    }

    /// Drives a run feeding monitor + watchdog, returning the first
    /// non-progressing verdict (or Progressing after `max` steps).
    fn drive(components: Vec<Spec>, service: &Spec, max: u64) -> ProgressVerdict {
        let sys = System::new(components, ExternalPolicy::AlwaysEnabled);
        let mut r = Runner::new(sys, 42);
        let monitor = ServiceMonitor::new(service);
        let mut wd = ProgressWatchdog::new(16, 10_000);
        let mut m = monitor;
        for _ in 0..max {
            match r.step_random() {
                None => return ProgressWatchdog::deadlock(r.system(), r.states()),
                Some(a) => {
                    if let Action::Event { event, .. } = &a {
                        m.observe(*event);
                    }
                    wd.note(&a, &m);
                    let v = wd.poll(r.system(), r.states(), &m);
                    if v != ProgressVerdict::Progressing {
                        return v;
                    }
                }
            }
        }
        ProgressVerdict::Progressing
    }

    #[test]
    fn watchdog_flags_deadlock_with_pinpointed_state() {
        // One tick, then a state with no moves at all: deadlock.
        let mut b = SpecBuilder::new("once");
        let s0 = b.state("live");
        let s1 = b.state("stuck");
        b.ext(s0, "tick", s1);
        let v = drive(vec![b.build().unwrap()], &tick_service(), 1_000);
        assert_eq!(
            v,
            ProgressVerdict::Deadlock {
                states: vec!["once:stuck".into()]
            }
        );
    }

    #[test]
    fn watchdog_flags_internal_livelock_outside_sink_sets() {
        // `spin` ticks from s0, but can slide into a τ-cycle s1 ⇄ s2.
        // That cycle is NOT a sink set of `spin` alone — s1 offers the
        // external escape `probe` — but the partner component shares
        // `probe` in its alphabet and never enables it, so dynamically
        // the cycle is inescapable and no `tick` is ever reachable
        // again. Per-component sink analysis cannot see this; the
        // watchdog's semantic-closure probe must.
        let mut b = SpecBuilder::new("spin");
        let s0 = b.state("serving");
        let s1 = b.state("spin1");
        let s2 = b.state("spin2");
        b.ext(s0, "tick", s0);
        b.int(s0, s1);
        b.int(s1, s2);
        b.int(s2, s1);
        b.ext(s1, "probe", s0);
        let spin = b.build().unwrap();

        let mut b = SpecBuilder::new("mute");
        let m0 = b.state("deaf");
        let m1 = b.state("unreachable");
        // `probe` is in mute's alphabet but only enabled from a state
        // that nothing ever reaches.
        b.ext(m1, "probe", m1);
        let _ = m0;
        let mute = b.build().unwrap();

        let v = drive(vec![spin, mute], &tick_service(), 5_000);
        match v {
            ProgressVerdict::Livelock { states } => {
                assert_eq!(states[1], "mute:deaf");
                assert!(
                    states[0] == "spin:spin1" || states[0] == "spin:spin2",
                    "unexpected pinpoint {states:?}"
                );
            }
            other => panic!("expected livelock, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_backs_off_on_healthy_quiescence() {
        // A system that ticks but also has long internal detours: the
        // watchdog may probe, must conclude Progressing, and must not
        // fire spuriously.
        let mut b = SpecBuilder::new("detour");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        b.ext(s0, "tick", s0);
        b.int(s0, s1);
        b.int(s1, s0);
        let v = drive(vec![b.build().unwrap()], &tick_service(), 3_000);
        assert_eq!(v, ProgressVerdict::Progressing);
    }
}
