//! Online service monitoring: checks a running system's external trace
//! against a (normalized) service specification, flagging safety
//! violations the moment they occur.

use protoquot_spec::{normalize, EventId, NormalSpec, Spec};

/// What the monitor observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// All observed events so far are consistent with the service.
    Conforming,
    /// The event at `position` (index into the observed trace) is not
    /// allowed by the service after the preceding trace.
    SafetyViolation {
        /// Offset of the offending event in the observed trace.
        position: usize,
        /// The offending event.
        event: EventId,
    },
}

/// Tracks ψ through the service as events are observed.
pub struct ServiceMonitor {
    service: NormalSpec,
    hub: usize,
    observed: Vec<EventId>,
    verdict: MonitorVerdict,
}

impl ServiceMonitor {
    /// Builds a monitor for `service` (normalized internally).
    pub fn new(service: &Spec) -> ServiceMonitor {
        let service = normalize(service);
        let hub = service.initial_hub();
        ServiceMonitor {
            service,
            hub,
            observed: Vec::new(),
            verdict: MonitorVerdict::Conforming,
        }
    }

    /// The service's alphabet — feed the monitor exactly these events.
    pub fn monitored_events(&self) -> impl Iterator<Item = EventId> + '_ {
        self.service.spec().alphabet().iter()
    }

    /// True if `event` is one the monitor watches.
    pub fn watches(&self, event: EventId) -> bool {
        self.service.spec().alphabet().contains(event)
    }

    /// Observes one event. Events outside the service alphabet are
    /// ignored; after a violation further events are recorded but not
    /// tracked.
    pub fn observe(&mut self, event: EventId) {
        if !self.watches(event) {
            return;
        }
        let position = self.observed.len();
        self.observed.push(event);
        if self.verdict != MonitorVerdict::Conforming {
            return;
        }
        match self.service.step(self.hub, event) {
            Some(h) => self.hub = h,
            None => {
                self.verdict = MonitorVerdict::SafetyViolation { position, event };
            }
        }
    }

    /// The verdict so far.
    pub fn verdict(&self) -> &MonitorVerdict {
        &self.verdict
    }

    /// The observed (service-alphabet) trace.
    pub fn observed(&self) -> &[EventId] {
        &self.observed
    }

    /// Events the service could accept next (τ* of the current hub);
    /// empty after a violation.
    pub fn acceptable_next(&self) -> Vec<EventId> {
        if self.verdict != MonitorVerdict::Conforming {
            return Vec::new();
        }
        self.service.tau_star(self.hub).iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::SpecBuilder;

    fn service() -> Spec {
        let mut b = SpecBuilder::new("S");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        b.build().unwrap()
    }

    #[test]
    fn conforming_run() {
        let mut m = ServiceMonitor::new(&service());
        for e in ["acc", "del", "acc", "del"] {
            m.observe(EventId::new(e));
        }
        assert_eq!(*m.verdict(), MonitorVerdict::Conforming);
        assert_eq!(m.observed().len(), 4);
        assert_eq!(m.acceptable_next(), vec![EventId::new("acc")]);
    }

    #[test]
    fn violation_flagged_at_position() {
        let mut m = ServiceMonitor::new(&service());
        m.observe(EventId::new("acc"));
        m.observe(EventId::new("del"));
        m.observe(EventId::new("del"));
        assert_eq!(
            *m.verdict(),
            MonitorVerdict::SafetyViolation {
                position: 2,
                event: EventId::new("del")
            }
        );
        assert!(m.acceptable_next().is_empty());
        // Later events don't change the verdict.
        m.observe(EventId::new("acc"));
        assert!(matches!(
            m.verdict(),
            MonitorVerdict::SafetyViolation { position: 2, .. }
        ));
    }

    #[test]
    fn unwatched_events_ignored() {
        let mut m = ServiceMonitor::new(&service());
        m.observe(EventId::new("noise"));
        assert_eq!(m.observed().len(), 0);
        assert!(!m.watches(EventId::new("noise")));
        assert!(m.watches(EventId::new("acc")));
    }
}
