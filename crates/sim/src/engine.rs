//! Step semantics for a set of composed specifications.
//!
//! Where `protoquot-spec` analyses machines symbolically, this engine
//! *runs* them: at each step the set of globally enabled actions is
//! computed, one is chosen by a seeded weighted RNG, and every involved
//! component moves. Used to validate derived converters dynamically —
//! the running system, not just the theorem, should behave.
//!
//! Semantics match the composition operator: an event in two or more
//! component alphabets fires only when *all* of them enable it
//! (handshake); internal transitions fire unilaterally. Events in
//! exactly one alphabet are the closed system's interface to its users;
//! by default the simulated environment is always willing
//! ([`ExternalPolicy::AlwaysEnabled`]).

use protoquot_spec::{Alphabet, EventId, EventTable, Spec, StateId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Splits a fleet-level seed into a per-run seed (SplitMix64 finalizer).
/// Exposed so the fleet and its tests derive identical run seeds.
pub fn derive_seed(base: u64, run: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(run.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How the engine treats events owned by exactly one component.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExternalPolicy {
    /// The environment accepts any external event (closed-world users).
    AlwaysEnabled,
    /// External events never fire (components only interact with each
    /// other).
    Disabled,
}

/// One globally enabled action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// An internal transition of one component.
    Internal {
        /// Index of the component.
        component: usize,
        /// Target state.
        to: StateId,
    },
    /// An event fired jointly by every component sharing it (one entry
    /// per participant; a single entry means an external event).
    Event {
        /// The event.
        event: EventId,
        /// `(component, target)` for each participant.
        moves: Vec<(usize, StateId)>,
    },
}

/// A set of components wired by event-name sharing, ready to run.
pub struct System {
    components: Vec<Spec>,
    /// For each event: the components having it in their alphabet.
    /// Ordered by the shared [`EventTable`] (ascending event *name*,
    /// never interned id): interner ids depend on which code interned
    /// first in this process, so ordering by them would make identical
    /// seeds produce different schedules across platforms, toolchains,
    /// and test harnesses. The same table orders the verify engine's
    /// bitsets and the runtime's wire codec, so all three agree on
    /// event indices.
    owners: Vec<(EventId, Vec<usize>)>,
    policy: ExternalPolicy,
}

impl System {
    /// Builds a system from components. Like the composition operator,
    /// events are wired by name.
    pub fn new(components: Vec<Spec>, policy: ExternalPolicy) -> System {
        let mut by_id: HashMap<EventId, Vec<usize>> = HashMap::new();
        let mut all = Alphabet::new();
        for (i, c) in components.iter().enumerate() {
            for e in c.alphabet().iter() {
                by_id.entry(e).or_default().push(i);
                all.insert(e);
            }
        }
        let owners = EventTable::new(&all)
            .events
            .iter()
            .map(|&e| (e, by_id.remove(&e).unwrap_or_default()))
            .collect();
        System {
            components,
            owners,
            policy,
        }
    }

    /// The components.
    pub fn components(&self) -> &[Spec] {
        &self.components
    }

    /// Number of components sharing `event`.
    pub fn owner_count(&self, event: EventId) -> usize {
        self.owners
            .iter()
            .find(|(e, _)| *e == event)
            .map_or(0, |(_, o)| o.len())
    }

    /// Every action enabled in the given global state (including all
    /// internal transitions; callers may filter). Deterministic order:
    /// internal transitions by component index, then events sorted by
    /// name — reproducible across platforms and process histories.
    pub fn actions_from(&self, states: &[StateId]) -> Vec<Action> {
        let mut actions = Vec::new();
        self.actions_into(states, &mut actions);
        actions
    }

    /// Like [`System::actions_from`] but reusing `actions`'s allocation
    /// (cleared first) — the hot path of long soak runs.
    pub fn actions_into(&self, states: &[StateId], actions: &mut Vec<Action>) {
        actions.clear();
        for (i, c) in self.components.iter().enumerate() {
            for &t in c.internal_from(states[i]) {
                actions.push(Action::Internal {
                    component: i,
                    to: t,
                });
            }
        }
        for (event, owners) in &self.owners {
            let event = *event;
            if owners.len() == 1 && self.policy == ExternalPolicy::Disabled {
                continue;
            }
            // Every owner must enable the event; nondeterministic
            // per-owner choices multiply out — enumerate combinations.
            let per_owner: Vec<Vec<StateId>> = owners
                .iter()
                .map(|&i| {
                    self.components[i]
                        .ext_successors(states[i], event)
                        .collect()
                })
                .collect();
            if per_owner.iter().any(Vec::is_empty) {
                continue;
            }
            let mut combos: Vec<Vec<(usize, StateId)>> = vec![Vec::new()];
            for (oi, targets) in per_owner.iter().enumerate() {
                let mut next = Vec::with_capacity(combos.len() * targets.len());
                for combo in &combos {
                    for &t in targets {
                        let mut c2 = combo.clone();
                        c2.push((owners[oi], t));
                        next.push(c2);
                    }
                }
                combos = next;
            }
            for moves in combos {
                actions.push(Action::Event { event, moves });
            }
        }
    }
}

/// A running instance of a [`System`].
pub struct Runner {
    system: System,
    states: Vec<StateId>,
    rng: StdRng,
    /// Weight multiplier for internal transitions, per component
    /// (default 1). Raising a lossy channel's weight simulates a bad
    /// link; lowering it a good one. Zero disables its internal moves.
    internal_weight: Vec<u32>,
    steps: u64,
    event_counts: HashMap<EventId, u64>,
    internal_counts: Vec<u64>,
    /// Scratch buffers reused across steps (soak hot path).
    scratch_actions: Vec<Action>,
    scratch_weights: Vec<u64>,
}

impl Runner {
    /// Creates a runner with a deterministic seed.
    pub fn new(system: System, seed: u64) -> Runner {
        let n = system.components.len();
        let states = system.components.iter().map(Spec::initial).collect();
        Runner {
            system,
            states,
            rng: StdRng::seed_from_u64(seed),
            internal_weight: vec![1; n],
            steps: 0,
            event_counts: HashMap::new(),
            internal_counts: vec![0; n],
            scratch_actions: Vec::new(),
            scratch_weights: Vec::new(),
        }
    }

    /// Sets the internal-transition weight of one component (e.g. the
    /// loss likelihood of a channel). Weight 0 disables.
    pub fn set_internal_weight(&mut self, component: usize, weight: u32) {
        self.internal_weight[component] = weight;
    }

    /// Number of components in the system.
    pub fn num_components(&self) -> usize {
        self.system.components.len()
    }

    /// Current state of each component.
    pub fn states(&self) -> &[StateId] {
        &self.states
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// How many times `event` has fired.
    pub fn event_count(&self, event: EventId) -> u64 {
        self.event_counts.get(&event).copied().unwrap_or(0)
    }

    /// How many internal transitions component `i` has taken.
    pub fn internal_count(&self, i: usize) -> u64 {
        self.internal_counts[i]
    }

    /// All actions enabled in the current global state (internal
    /// transitions of zero-weight components excluded).
    pub fn enabled_actions(&self) -> Vec<Action> {
        self.system
            .actions_from(&self.states)
            .into_iter()
            .filter(|a| match a {
                Action::Internal { component, .. } => self.internal_weight[*component] > 0,
                Action::Event { .. } => true,
            })
            .collect()
    }

    /// Applies an action (must be currently enabled).
    pub fn apply(&mut self, action: &Action) {
        match action {
            Action::Internal { component, to } => {
                self.states[*component] = *to;
                self.internal_counts[*component] += 1;
            }
            Action::Event { event, moves } => {
                for &(c, t) in moves {
                    self.states[c] = t;
                }
                *self.event_counts.entry(*event).or_insert(0) += 1;
            }
        }
        self.steps += 1;
    }

    /// Takes one weighted-random enabled action; returns it, or `None`
    /// on deadlock.
    pub fn step_random(&mut self) -> Option<Action> {
        self.step_weighted(|_, base| base)
    }

    /// Like [`Runner::step_random`], but the caller may reshape each
    /// enabled action's selection weight: `weigh(action, base)` receives
    /// the default weight (`internal_weight` for internal transitions,
    /// 1 for events) and returns the weight to use. Returning 0 removes
    /// the action from this step's choices; if every action weighs 0
    /// the step falls back to the base weights rather than deadlocking
    /// artificially. This is the fault-injection hook: fault plans bias
    /// the schedule without ever stepping outside the composed
    /// semantics.
    pub fn step_weighted<F: FnMut(&Action, u64) -> u64>(&mut self, mut weigh: F) -> Option<Action> {
        let mut actions = std::mem::take(&mut self.scratch_actions);
        self.system.actions_into(&self.states, &mut actions);
        actions.retain(|a| match a {
            Action::Internal { component, .. } => self.internal_weight[*component] > 0,
            Action::Event { .. } => true,
        });
        if actions.is_empty() {
            self.scratch_actions = actions;
            return None;
        }
        let mut weights = std::mem::take(&mut self.scratch_weights);
        weights.clear();
        for a in &actions {
            let base = match a {
                Action::Internal { component, .. } => self.internal_weight[*component] as u64,
                Action::Event { .. } => 1,
            };
            weights.push(weigh(a, base));
        }
        let mut total: u64 = weights.iter().sum();
        if total == 0 {
            // Every action vetoed: fall back to the unbiased schedule.
            for (w, a) in weights.iter_mut().zip(&actions) {
                *w = match a {
                    Action::Internal { component, .. } => self.internal_weight[*component] as u64,
                    Action::Event { .. } => 1,
                };
            }
            total = weights.iter().sum();
        }
        debug_assert!(total > 0);
        let mut pick = self.rng.gen_range(0..total);
        let mut chosen = 0;
        for (i, &w) in weights.iter().enumerate() {
            if pick < w {
                chosen = i;
                break;
            }
            pick -= w;
        }
        let action = actions[chosen].clone();
        self.apply(&action);
        self.scratch_actions = actions;
        self.scratch_weights = weights;
        Some(action)
    }

    /// Current global state, one entry per component (snapshot).
    pub fn snapshot(&self) -> Vec<StateId> {
        self.states.clone()
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        &self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::SpecBuilder;

    fn handshake_pair() -> Vec<Spec> {
        let mut a = SpecBuilder::new("A");
        let a0 = a.state("a0");
        let a1 = a.state("a1");
        a.ext(a0, "sync", a1);
        a.ext(a1, "solo_a", a0);
        let mut b = SpecBuilder::new("B");
        let b0 = b.state("b0");
        let b1 = b.state("b1");
        b.ext(b0, "sync", b1);
        b.ext(b1, "back", b0);
        b.int(b1, b0);
        vec![a.build().unwrap(), b.build().unwrap()]
    }

    #[test]
    fn shared_events_need_all_owners() {
        let sys = System::new(handshake_pair(), ExternalPolicy::AlwaysEnabled);
        assert_eq!(sys.owner_count(EventId::new("sync")), 2);
        assert_eq!(sys.owner_count(EventId::new("solo_a")), 1);
        let r = Runner::new(sys, 1);
        let actions = r.enabled_actions();
        // Only "sync" is enabled initially (solo_a needs state a1).
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Event { event, moves } => {
                assert_eq!(*event, EventId::new("sync"));
                assert_eq!(moves.len(), 2);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn apply_moves_all_participants() {
        let sys = System::new(handshake_pair(), ExternalPolicy::AlwaysEnabled);
        let mut r = Runner::new(sys, 1);
        let a = r.enabled_actions().remove(0);
        r.apply(&a);
        assert_eq!(r.states()[0], StateId(1));
        assert_eq!(r.states()[1], StateId(1));
        assert_eq!(r.event_count(EventId::new("sync")), 1);
        assert_eq!(r.steps(), 1);
    }

    #[test]
    fn disabled_externals_are_skipped() {
        let sys = System::new(handshake_pair(), ExternalPolicy::Disabled);
        let mut r = Runner::new(sys, 1);
        r.step_random().unwrap(); // sync
                                  // Now A enables solo_a (external) and B enables back (external)
                                  // and B's internal; with externals disabled only the internal
                                  // remains.
        let actions = r.enabled_actions();
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], Action::Internal { component: 1, .. }));
    }

    #[test]
    fn zero_weight_disables_internal() {
        let sys = System::new(handshake_pair(), ExternalPolicy::Disabled);
        let mut r = Runner::new(sys, 1);
        r.set_internal_weight(1, 0);
        r.step_random().unwrap(); // sync
        assert!(r.step_random().is_none(), "deadlock expected");
    }

    #[test]
    fn runs_are_reproducible_by_seed() {
        let mk = || {
            let sys = System::new(handshake_pair(), ExternalPolicy::AlwaysEnabled);
            let mut r = Runner::new(sys, 42);
            let mut log = Vec::new();
            for _ in 0..50 {
                match r.step_random() {
                    Some(a) => log.push(format!("{a:?}")),
                    None => break,
                }
            }
            log
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn nondeterministic_choices_enumerate() {
        let mut a = SpecBuilder::new("N");
        let s = a.state("s");
        let t1 = a.state("t1");
        let t2 = a.state("t2");
        a.ext(s, "e", t1);
        a.ext(s, "e", t2);
        let sys = System::new(vec![a.build().unwrap()], ExternalPolicy::AlwaysEnabled);
        let r = Runner::new(sys, 1);
        assert_eq!(r.enabled_actions().len(), 2);
    }

    /// Action enumeration must be ordered by event *name*, not by the
    /// interner's numeric ids: ids depend on which code interned first
    /// in this process, so id-ordered schedules would differ across
    /// platforms/toolchains for identical seeds. Interning the
    /// lexicographically-later name first forces id order and name
    /// order to disagree.
    #[test]
    fn action_order_is_name_order_not_interning_order() {
        let z = EventId::new("zz_order_probe");
        let a = EventId::new("aa_order_probe");
        assert!(z.index() < a.index(), "test needs z interned before a");
        let mut b = SpecBuilder::new("O");
        let s = b.state("s");
        let t = b.state("t");
        b.ext(s, "zz_order_probe", t);
        b.ext(s, "aa_order_probe", t);
        let sys = System::new(vec![b.build().unwrap()], ExternalPolicy::AlwaysEnabled);
        let actions = sys.actions_from(&[StateId(0)]);
        let names: Vec<String> = actions
            .iter()
            .map(|a| match a {
                Action::Event { event, .. } => event.name(),
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(names, vec!["aa_order_probe", "zz_order_probe"]);
    }

    /// Same seed ⇒ bit-identical `TraceEntry` log, the repeatability
    /// contract the soak fleet's counterexample seeds rely on.
    #[test]
    fn same_seed_same_trace_entry_log() {
        let run = || {
            let sys = System::new(handshake_pair(), ExternalPolicy::AlwaysEnabled);
            let mut r = Runner::new(sys, 7);
            let mut log = Vec::new();
            for step in 0..200 {
                match r.step_random() {
                    Some(a) => log.push(format!(
                        "{:?}",
                        crate::log::TraceEntry::from_action(step, &a)
                    )),
                    None => break,
                }
            }
            log
        };
        let first = run();
        assert_eq!(first.len(), 200);
        assert_eq!(first, run());
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
    }

    #[test]
    fn step_weighted_biases_and_falls_back() {
        // Zero weight on every action must not deadlock the runner.
        let sys = System::new(handshake_pair(), ExternalPolicy::AlwaysEnabled);
        let mut r = Runner::new(sys, 3);
        assert!(r.step_weighted(|_, _| 0).is_some());
        // Biasing picks the boosted action deterministically when it is
        // the only one with nonzero weight.
        let mut b = SpecBuilder::new("W");
        let s = b.state("s");
        let t = b.state("t");
        b.ext(s, "left", t);
        b.ext(s, "right", t);
        let sys = System::new(vec![b.build().unwrap()], ExternalPolicy::AlwaysEnabled);
        let mut r = Runner::new(sys, 5);
        let a = r
            .step_weighted(|a, _| match a {
                Action::Event { event, .. } if event.name() == "right" => 1,
                _ => 0,
            })
            .unwrap();
        match a {
            Action::Event { event, .. } => assert_eq!(event.name(), "right"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn internal_counts_tracked() {
        let mut a = SpecBuilder::new("I");
        let s = a.state("s");
        let t = a.state("t");
        a.int(s, t);
        let sys = System::new(vec![a.build().unwrap()], ExternalPolicy::AlwaysEnabled);
        let mut r = Runner::new(sys, 1);
        assert!(r.step_random().is_some());
        assert_eq!(r.internal_count(0), 1);
        assert!(r.step_random().is_none());
    }
}
