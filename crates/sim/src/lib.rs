//! # protoquot-sim
//!
//! Executable semantics for composed specifications: where the analysis
//! crates prove that a conversion system works, this crate *runs* it.
//!
//! * [`engine`] — step semantics with seeded weighted-random
//!   scheduling; events shared by several components fire as
//!   handshakes, internal transitions fire unilaterally, and per-
//!   component internal weights model channel loss rates;
//! * [`monitor`] — an online service monitor that tracks the observed
//!   external trace through a normalized service spec and pinpoints the
//!   first safety violation;
//! * [`harness`] — one-call bounded runs producing a [`RunReport`]
//!   (deadlock flag, verdict, event and loss counters).
//!
//! Used by the examples to demonstrate a derived converter shuttling
//! messages between the alternating-bit and non-sequenced protocol
//! machines under fault injection, and by integration tests to confirm
//! that simulated runs agree with the static `satisfies` verdicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod explore;
pub mod harness;
pub mod log;
pub mod monitor;

pub use engine::{Action, ExternalPolicy, Runner, System};
pub use explore::{explore, ExploreResult};
pub use harness::{run_monitored, run_traced, RunReport, SimConfig};
pub use log::{render_msc, TraceEntry, TraceEvent};
pub use monitor::{MonitorVerdict, ServiceMonitor};
