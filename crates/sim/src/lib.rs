//! # protoquot-sim
//!
//! Executable semantics for composed specifications: where the analysis
//! crates prove that a conversion system works, this crate *runs* it.
//!
//! * [`engine`] — step semantics with seeded weighted-random
//!   scheduling; events shared by several components fire as
//!   handshakes, internal transitions fire unilaterally, and per-
//!   component internal weights model channel loss rates;
//! * [`monitor`] — an online service monitor that tracks the observed
//!   external trace through a normalized service spec and pinpoints the
//!   first safety violation;
//! * [`harness`] — one-call bounded runs producing a [`RunReport`]
//!   (deadlock flag, verdict, event and loss counters);
//! * [`fault`] — composable scheduler-level fault models (loss,
//!   duplication, reordering, burst loss) biasing the choice among
//!   enabled actions;
//! * [`fleet`] — a parallel, seeded soak fleet running thousands of
//!   monitored, fault-injected runs and aggregating a [`SoakReport`];
//! * [`shrink`] — delta-debugging minimization of a failing schedule
//!   to its shortest violating action sequence.
//!
//! Used by the examples to demonstrate a derived converter shuttling
//! messages between the alternating-bit and non-sequenced protocol
//! machines under fault injection, and by integration tests to confirm
//! that simulated runs agree with the static `satisfies` verdicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod explore;
pub mod fault;
pub mod fleet;
pub mod harness;
pub mod log;
pub mod monitor;
pub mod shrink;

pub use engine::{derive_seed, Action, ExternalPolicy, Runner, System};
pub use explore::{explore, ExploreResult};
pub use fault::{redirect_transition, Fault, FaultPlan, FaultState};
pub use fleet::{Counterexample, FleetConfig, FleetRunner, RunVerdict, SoakReport};
pub use harness::{run_monitored, run_traced, RunReport, SimConfig};
pub use log::{render_msc, TraceEntry, TraceEvent};
pub use monitor::{MonitorVerdict, ProgressVerdict, ProgressWatchdog, ServiceMonitor};
pub use shrink::{shrink_schedule, FailureKind};
