//! A batteries-included harness: run a component set against a service
//! monitor for a bounded number of steps and produce a [`RunReport`].
//!
//! This is the smoltcp-style "fault injection demo" layer: wire the
//! derived converter between real protocol machines, crank up channel
//! loss, and watch the service hold (or a deadlock appear where the
//! theory predicted one).

use crate::engine::{Action, ExternalPolicy, Runner, System};
use crate::monitor::{MonitorVerdict, ServiceMonitor};
use protoquot_spec::{EventId, Spec};

/// Outcome of a bounded simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Steps actually executed.
    pub steps: u64,
    /// True if the system deadlocked before the step budget ran out.
    pub deadlocked: bool,
    /// The monitor's verdict.
    pub verdict: MonitorVerdict,
    /// Count of each monitored event, by name.
    pub monitored_counts: Vec<(String, u64)>,
    /// Internal transitions per component (index-aligned with the
    /// component list) — for lossy channels this counts losses.
    pub internal_counts: Vec<u64>,
}

impl RunReport {
    /// Count of a monitored event by name (0 if never fired).
    pub fn count(&self, name: &str) -> u64 {
        self.monitored_counts
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, c)| c)
    }

    /// True iff the run neither deadlocked nor violated the service.
    pub fn is_clean(&self) -> bool {
        !self.deadlocked && self.verdict == MonitorVerdict::Conforming
    }
}

/// Configuration for [`run_monitored`].
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// RNG seed.
    pub seed: u64,
    /// Maximum number of steps.
    pub max_steps: u64,
    /// Per-component internal-transition weights, `(component index,
    /// weight)`; unlisted components keep weight 1.
    pub internal_weights: Vec<(usize, u32)>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0xC0FFEE,
            max_steps: 10_000,
            internal_weights: Vec::new(),
        }
    }
}

/// Runs `components` (wired by event name, environment always willing)
/// while monitoring conformance to `service`.
///
/// ```
/// use protoquot_sim::{run_monitored, SimConfig};
/// use protoquot_spec::SpecBuilder;
/// let mut s = SpecBuilder::new("S");
/// let u0 = s.state("u0");
/// let u1 = s.state("u1");
/// s.ext(u0, "acc", u1);
/// s.ext(u1, "del", u0);
/// let service = s.build().unwrap();
/// // Run the service spec against itself as a trivial pipeline.
/// let report = run_monitored(
///     vec![service.clone()],
///     &service,
///     &SimConfig { max_steps: 100, ..Default::default() },
/// );
/// assert!(report.is_clean());
/// assert_eq!(report.count("acc") + report.count("del"), 100);
/// ```
pub fn run_monitored(components: Vec<Spec>, service: &Spec, config: &SimConfig) -> RunReport {
    run_traced(components, service, config, 0).0
}

/// Like [`run_monitored`], additionally recording the first
/// `max_logged` scheduler steps as a trace (see [`crate::log`]).
pub fn run_traced(
    components: Vec<Spec>,
    service: &Spec,
    config: &SimConfig,
    max_logged: usize,
) -> (RunReport, Vec<crate::log::TraceEntry>) {
    let mut monitor = ServiceMonitor::new(service);
    let system = System::new(components, ExternalPolicy::AlwaysEnabled);
    let mut runner = Runner::new(system, config.seed);
    for &(i, w) in &config.internal_weights {
        runner.set_internal_weight(i, w);
    }
    let mut deadlocked = false;
    let mut log = Vec::new();
    for step in 0..config.max_steps {
        match runner.step_random() {
            Some(action) => {
                if (step as usize) < max_logged {
                    log.push(crate::log::TraceEntry::from_action(step, &action));
                }
                if let Action::Event { event, .. } = action {
                    monitor.observe(event);
                }
            }
            None => {
                deadlocked = true;
                break;
            }
        }
    }
    let monitored_counts = monitor
        .monitored_events()
        .map(|e: EventId| (e.name(), runner.event_count(e)))
        .collect();
    let internal_counts = (0..runner.num_components())
        .map(|i| runner.internal_count(i))
        .collect();
    (
        RunReport {
            steps: runner.steps(),
            deadlocked,
            verdict: monitor.verdict().clone(),
            monitored_counts,
            internal_counts,
        },
        log,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::SpecBuilder;

    fn service() -> Spec {
        let mut b = SpecBuilder::new("S");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        b.build().unwrap()
    }

    /// A perfect little pipeline conforms forever.
    #[test]
    fn clean_pipeline_run() {
        let mut b = SpecBuilder::new("pipe");
        let p0 = b.state("p0");
        let p1 = b.state("p1");
        b.ext(p0, "acc", p1);
        b.ext(p1, "del", p0);
        let pipe = b.build().unwrap();
        let report = run_monitored(vec![pipe], &service(), &SimConfig::default());
        assert!(report.is_clean());
        assert_eq!(report.steps, 10_000);
        // acc and del alternate: counts within 1 of each other.
        let acc = report.count("acc");
        let del = report.count("del");
        assert!(acc - del <= 1, "acc={acc} del={del}");
        assert!(acc > 1000);
    }

    /// A duplicating component trips the monitor.
    #[test]
    fn violating_component_detected() {
        let mut b = SpecBuilder::new("dup");
        let p0 = b.state("p0");
        let p1 = b.state("p1");
        let p2 = b.state("p2");
        b.ext(p0, "acc", p1);
        b.ext(p1, "del", p2);
        b.ext(p2, "del", p0);
        let dup = b.build().unwrap();
        let report = run_monitored(vec![dup], &service(), &SimConfig::default());
        assert!(matches!(
            report.verdict,
            MonitorVerdict::SafetyViolation { .. }
        ));
        assert!(!report.is_clean());
    }

    /// A component that stops dead is reported as a deadlock.
    #[test]
    fn deadlock_detected() {
        let mut b = SpecBuilder::new("stop");
        let p0 = b.state("p0");
        let p1 = b.state("p1");
        b.ext(p0, "acc", p1);
        b.event("del");
        let stop = b.build().unwrap();
        let report = run_monitored(vec![stop], &service(), &SimConfig::default());
        assert!(report.deadlocked);
        assert_eq!(report.verdict, MonitorVerdict::Conforming);
        assert_eq!(report.steps, 1);
    }

    /// Internal weights shape the run (all-internal component).
    #[test]
    fn weights_recorded_in_internal_counts() {
        let mut b = SpecBuilder::new("spin");
        let p0 = b.state("p0");
        let p1 = b.state("p1");
        b.int(p0, p1);
        b.int(p1, p0);
        b.ext(p0, "acc", p1);
        b.ext(p1, "del", p0);
        let spin = b.build().unwrap();
        let cfg = SimConfig {
            internal_weights: vec![(0, 10)],
            max_steps: 1000,
            ..Default::default()
        };
        let report = run_monitored(vec![spin], &service(), &cfg);
        // Internal moves dominate 10:1 over the two events.
        assert!(report.internal_counts[0] > report.count("acc") + report.count("del"));
    }
}
