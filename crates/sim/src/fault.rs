//! Composable channel-fault models for soak runs.
//!
//! A [`FaultPlan`] is a set of [`Fault`]s applied to a running
//! [`crate::engine::System`] through the scheduler's weighting hook
//! ([`crate::engine::Runner::step_weighted`]). Faults *bias* the choice
//! among enabled actions — they never apply an action the composed
//! semantics does not enable — so every faulted trace is a genuine
//! trace of `B ‖ C`, and a safety violation found under fault injection
//! is a real violation of the static `satisfies` verdict. That is what
//! makes the soak/static differential test sound by construction.
//!
//! The models:
//!
//! * [`Fault::Loss`] — boosts the internal (loss/corruption)
//!   transitions of the channel components, so messages genuinely get
//!   dropped far more often than under uniform scheduling;
//! * [`Fault::Duplication`] — boosts any action re-firing a recently
//!   fired event, driving the system down its retransmission and
//!   duplicate-delivery paths (stale acks, re-sent data);
//! * [`Fault::Reorder`] — re-rolls a per-event priority every `period`
//!   steps, adversarially starving some events while favouring others,
//!   which shuffles the interleaving of concurrent in-flight messages;
//! * [`Fault::Burst`] — a two-phase modulator (good/bad windows) that
//!   multiplies loss weights only during bad windows, modelling bursty
//!   link outages rather than uniform loss.
//!
//! Faults compose multiplicatively: a plan with `loss` and `reorder`
//! applies both biases to each action.

use crate::engine::Action;
use protoquot_spec::{spec_from_parts, EventId, Spec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// One fault model. See the module docs for the semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Multiply the weight of internal (loss) transitions by `weight`.
    Loss {
        /// Weight multiplier for internal transitions.
        weight: u32,
    },
    /// Multiply the weight of actions re-firing one of the last
    /// `window` fired events by `boost`.
    Duplication {
        /// Weight multiplier for recently fired events.
        boost: u32,
        /// How many recent events count as "recent".
        window: usize,
    },
    /// Every `period` steps, re-roll each event's priority uniformly
    /// from `1..=max_boost`.
    Reorder {
        /// Steps between priority re-rolls.
        period: u64,
        /// Upper bound (inclusive) of the rolled priorities.
        max_boost: u32,
    },
    /// Loss bursts: `weight` applies to internal transitions during
    /// `bad` steps out of every `good + bad`.
    Burst {
        /// Length of the loss-free window.
        good: u64,
        /// Length of the bursty window.
        bad: u64,
        /// Weight multiplier during the bursty window.
        weight: u32,
    },
}

impl Fault {
    fn tag(&self) -> &'static str {
        match self {
            Fault::Loss { .. } => "loss",
            Fault::Duplication { .. } => "dup",
            Fault::Reorder { .. } => "reorder",
            Fault::Burst { .. } => "burst",
        }
    }
}

/// A composable set of fault models, applied together to every step.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: uniform scheduling, no bias.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault (builder style).
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// The faults in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// True if the plan biases nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses a comma-separated fault list, e.g. `loss,dup,reorder`.
    /// Recognised names: `loss`, `dup`, `reorder`, `burst` (each with
    /// fixed default parameters). Unknown names are an error.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for name in s.split(',').map(str::trim).filter(|n| !n.is_empty()) {
            let fault = match name {
                "loss" => Fault::Loss { weight: 8 },
                "dup" => Fault::Duplication {
                    boost: 4,
                    window: 4,
                },
                "reorder" => Fault::Reorder {
                    period: 64,
                    max_boost: 8,
                },
                "burst" => Fault::Burst {
                    good: 512,
                    bad: 128,
                    weight: 32,
                },
                other => {
                    return Err(format!(
                        "unknown fault `{other}` (known: loss, dup, reorder, burst)"
                    ))
                }
            };
            plan.faults.push(fault);
        }
        Ok(plan)
    }

    /// Instantiates per-run mutable fault state with its own seeded RNG
    /// (independent of the scheduler's, so adding a fault does not
    /// perturb the scheduler's random stream structure).
    pub fn start(&self, seed: u64) -> FaultState {
        FaultState {
            plan: self.clone(),
            rng: StdRng::seed_from_u64(seed ^ 0xFA_17),
            step: 0,
            recent: Vec::new(),
            priorities: HashMap::new(),
            epoch: 0,
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "none");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", fault.tag())?;
        }
        Ok(())
    }
}

/// Per-run mutable state of a [`FaultPlan`]: the rolled priorities, the
/// recent-event window and the burst phase.
pub struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    step: u64,
    recent: Vec<EventId>,
    priorities: HashMap<EventId, u32>,
    epoch: u64,
}

impl FaultState {
    /// The weight for `action` given its unbiased `base` weight. Call
    /// once per enabled action per step (enumeration order is
    /// deterministic, so the rolled priorities are too).
    pub fn weigh(&mut self, action: &Action, base: u64) -> u64 {
        let mut w = base;
        for i in 0..self.plan.faults.len() {
            let fault = self.plan.faults[i];
            w = w.saturating_mul(self.multiplier(fault, action) as u64);
        }
        w
    }

    fn multiplier(&mut self, fault: Fault, action: &Action) -> u32 {
        match (fault, action) {
            (Fault::Loss { weight }, Action::Internal { .. }) => weight,
            (Fault::Duplication { boost, window }, Action::Event { event, .. }) => {
                let recent = self.recent.iter().rev().take(window);
                if recent.into_iter().any(|e| e == event) {
                    boost
                } else {
                    1
                }
            }
            (Fault::Reorder { period, max_boost }, Action::Event { event, .. }) => {
                let epoch = self.step / period.max(1);
                if epoch != self.epoch {
                    self.epoch = epoch;
                    self.priorities.clear();
                }
                let rng = &mut self.rng;
                *self
                    .priorities
                    .entry(*event)
                    .or_insert_with(|| rng.gen_range(1..max_boost.max(1) + 1))
            }
            (Fault::Burst { good, bad, weight }, Action::Internal { .. }) => {
                let cycle = (good + bad).max(1);
                if self.step % cycle >= good {
                    weight
                } else {
                    1
                }
            }
            _ => 1,
        }
    }

    /// Records an applied action (feeds the duplication window and the
    /// step counter). Call after every scheduler step.
    pub fn note(&mut self, action: &Action) {
        self.step += 1;
        if let Action::Event { event, .. } = action {
            self.recent.push(*event);
            if self.recent.len() > 16 {
                self.recent.remove(0);
            }
        }
    }
}

/// Redirects the `k`-th external transition (in the spec's stored
/// order) of `spec` to a different target state, returning the mutated
/// spec, or `None` if `k` is out of range or the spec has fewer than
/// two states (no alternative target exists). Used by the conformance
/// soak tests: a correct pipeline must stay clean, and a converter with
/// one transition redirected must be caught.
pub fn redirect_transition(spec: &Spec, k: usize) -> Option<Spec> {
    let ext: Vec<_> = spec.external_transitions().collect();
    let &(s, e, t) = ext.get(k)?;
    if spec.num_states() < 2 {
        return None;
    }
    // Deterministic different target: the next state index, cyclically.
    let new_t = protoquot_spec::StateId(((t.index() + 1) % spec.num_states()) as u32);
    debug_assert_ne!(new_t, t);
    let mut mutated = ext;
    mutated[k] = (s, e, new_t);
    let names: Vec<String> = spec
        .states()
        .map(|st| spec.state_name(st).to_owned())
        .collect();
    let int: Vec<_> = spec.internal_transitions().collect();
    spec_from_parts(
        format!("{}/mut{k}", spec.name()),
        spec.alphabet().clone(),
        names,
        spec.initial(),
        mutated,
        int,
    )
    .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExternalPolicy, Runner, System};
    use protoquot_spec::SpecBuilder;

    fn lossy_pipe() -> Vec<Spec> {
        // A 1-slot "channel" with an internal loss and a timeout resend
        // loop, plus matching sender/receiver behaviour folded into one
        // component for brevity.
        let mut b = SpecBuilder::new("pipe");
        let idle = b.state("idle");
        let sent = b.state("sent");
        let lost = b.state("lost");
        b.ext(idle, "acc", sent);
        b.int(sent, lost);
        b.ext(lost, "resend", sent);
        b.ext(sent, "del", idle);
        vec![b.build().unwrap()]
    }

    #[test]
    fn parse_known_and_unknown() {
        let plan = FaultPlan::parse("loss, dup,reorder,burst").unwrap();
        assert_eq!(plan.faults().len(), 4);
        assert_eq!(plan.to_string(), "loss,dup,reorder,burst");
        assert!(FaultPlan::parse("loss,gamma-rays").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert_eq!(FaultPlan::none().to_string(), "none");
    }

    #[test]
    fn loss_fault_increases_losses() {
        let steps = 4_000;
        let run = |plan: &FaultPlan| {
            let sys = System::new(lossy_pipe(), ExternalPolicy::AlwaysEnabled);
            let mut r = Runner::new(sys, 9);
            let mut fs = plan.start(9);
            for _ in 0..steps {
                match r.step_weighted(|a, base| fs.weigh(a, base)) {
                    Some(a) => fs.note(&a),
                    None => break,
                }
            }
            r.internal_count(0)
        };
        let baseline = run(&FaultPlan::none());
        let faulted = run(&FaultPlan::none().with(Fault::Loss { weight: 16 }));
        // Every loss forces a resend step, so the loss fraction is
        // structurally capped near 1/2; 1.5× over the uniform baseline
        // is the strong-bias regime for this machine.
        assert!(
            faulted * 2 > baseline * 3,
            "loss bias too weak: {faulted} vs {baseline}"
        );
    }

    #[test]
    fn burst_fault_confines_losses_to_bad_windows() {
        let plan = FaultPlan::none().with(Fault::Burst {
            good: 100,
            bad: 100,
            weight: 1_000,
        });
        // Like lossy_pipe but with extra non-loss alternatives at
        // `sent`, so the good-window loss rate is visibly low.
        let mut b = SpecBuilder::new("pipe");
        let idle = b.state("idle");
        let sent = b.state("sent");
        let lost = b.state("lost");
        b.ext(idle, "acc", sent);
        b.int(sent, lost);
        b.ext(lost, "resend", sent);
        b.ext(sent, "nop1", sent);
        b.ext(sent, "nop2", sent);
        b.ext(sent, "nop3", sent);
        b.ext(sent, "del", idle);
        let sys = System::new(vec![b.build().unwrap()], ExternalPolicy::AlwaysEnabled);
        let mut r = Runner::new(sys, 1);
        let mut fs = plan.start(1);
        let mut losses_in_good = 0u64;
        let mut losses_in_bad = 0u64;
        for step in 0..10_000u64 {
            match r.step_weighted(|a, base| fs.weigh(a, base)) {
                Some(a) => {
                    if matches!(a, Action::Internal { .. }) {
                        if step % 200 < 100 {
                            losses_in_good += 1;
                        } else {
                            losses_in_bad += 1;
                        }
                    }
                    fs.note(&a);
                }
                None => break,
            }
        }
        assert!(
            losses_in_bad > losses_in_good * 3,
            "bursts not bursty: {losses_in_bad} bad vs {losses_in_good} good"
        );
    }

    #[test]
    fn faulted_runs_are_seed_deterministic() {
        let plan = FaultPlan::parse("loss,dup,reorder,burst").unwrap();
        let run = || {
            let sys = System::new(lossy_pipe(), ExternalPolicy::AlwaysEnabled);
            let mut r = Runner::new(sys, 1234);
            let mut fs = plan.start(1234);
            let mut log = Vec::new();
            for _ in 0..500 {
                match r.step_weighted(|a, base| fs.weigh(a, base)) {
                    Some(a) => {
                        log.push(format!("{a:?}"));
                        fs.note(&a);
                    }
                    None => break,
                }
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn redirect_changes_exactly_one_transition() {
        let mut b = SpecBuilder::new("M");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("s2");
        b.ext(s0, "x", s1);
        b.ext(s1, "y", s2);
        b.ext(s2, "z", s0);
        let spec = b.build().unwrap();
        let mutated = redirect_transition(&spec, 1).unwrap();
        assert_eq!(mutated.num_states(), spec.num_states());
        assert_eq!(mutated.num_external(), spec.num_external());
        let orig: Vec<_> = spec.external_transitions().collect();
        let muta: Vec<_> = mutated.external_transitions().collect();
        let diff = orig.iter().zip(&muta).filter(|(a, b)| a != b).count();
        assert_eq!(diff, 1);
        assert!(redirect_transition(&spec, 99).is_none());
    }
}
