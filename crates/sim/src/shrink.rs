//! Schedule shrinking: minimize a failing run to its shortest violating
//! action sequence before reporting it.
//!
//! A soak failure arrives as the full recorded schedule — often
//! thousands of actions, most of them irrelevant channel noise. This
//! module applies delta debugging (ddmin) over the schedule: repeatedly
//! delete chunks and replay, keeping any candidate that still fails
//! in the *same class* ([`FailureKind`]). Replay is apply-if-enabled:
//! an action that is no longer enabled after earlier deletions is
//! skipped rather than failing the candidate, which both smooths the
//! search landscape (ddmin's chunks need not align with the system's
//! causal structure) and lets the replayer itself drop dead weight —
//! the result of a successful replay is the subsequence that was
//! actually applied, ending at the violation.

use crate::engine::{Action, System};
use crate::monitor::{MonitorVerdict, ServiceMonitor};
use protoquot_spec::Spec;

/// The failure class a shrink must preserve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The service monitor flagged an event the service does not allow.
    Safety,
    /// The system reached a global state with no enabled actions.
    Deadlock,
}

/// Replays `schedule` against a fresh instance of `system`, skipping
/// actions that are not enabled when their turn comes. Returns the
/// applied subsequence if the replay reproduces `kind`:
///
/// * [`FailureKind::Safety`] — the subsequence ends at the first action
///   whose event the monitor rejects;
/// * [`FailureKind::Deadlock`] — the final state (after the whole
///   schedule) has no enabled actions.
///
/// Returns `None` if the failure does not reproduce.
pub fn replay(
    system: &System,
    service: &Spec,
    schedule: &[Action],
    kind: FailureKind,
) -> Option<Vec<Action>> {
    let mut states: Vec<_> = system.components().iter().map(Spec::initial).collect();
    let mut monitor = ServiceMonitor::new(service);
    let mut enabled = Vec::new();
    let mut applied = Vec::new();
    for action in schedule {
        system.actions_into(&states, &mut enabled);
        if !enabled.contains(action) {
            continue;
        }
        match action {
            Action::Internal { component, to } => states[*component] = *to,
            Action::Event { event, moves } => {
                for &(c, t) in moves {
                    states[c] = t;
                }
                monitor.observe(*event);
            }
        }
        applied.push(action.clone());
        if kind == FailureKind::Safety {
            if let MonitorVerdict::SafetyViolation { .. } = monitor.verdict() {
                return Some(applied);
            }
        }
    }
    match kind {
        FailureKind::Safety => None,
        FailureKind::Deadlock => {
            system.actions_into(&states, &mut enabled);
            if enabled.is_empty() {
                Some(applied)
            } else {
                None
            }
        }
    }
}

/// Minimizes `schedule` to a (locally) shortest action sequence that
/// still reproduces `kind` on `system`, using ddmin with
/// apply-if-enabled replay. If the input schedule does not reproduce
/// the failure at all (it should — it was recorded from a failing run),
/// it is returned unchanged.
pub fn shrink_schedule(
    system: &System,
    service: &Spec,
    schedule: &[Action],
    kind: FailureKind,
) -> Vec<Action> {
    let mut current = match replay(system, service, schedule, kind) {
        Some(applied) => applied,
        None => return schedule.to_vec(),
    };
    let mut chunks = 2usize;
    while current.len() >= 2 {
        let chunk_len = current.len().div_ceil(chunks);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk_len).min(current.len());
            let candidate: Vec<Action> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if let Some(applied) = replay(system, service, &candidate, kind) {
                current = applied;
                chunks = 2.max(chunks.saturating_sub(1));
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunks >= current.len() {
                break;
            }
            chunks = (chunks * 2).min(current.len());
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExternalPolicy;
    use protoquot_spec::SpecBuilder;

    /// A machine that may emit `good` forever but can also emit `bad`,
    /// which the service never allows.
    fn sometimes_bad() -> Spec {
        let mut b = SpecBuilder::new("M");
        let s0 = b.state("s0");
        b.ext(s0, "good", s0);
        b.ext(s0, "bad", s0);
        b.build().unwrap()
    }

    fn good_service() -> Spec {
        let mut b = SpecBuilder::new("S");
        let u0 = b.state("u0");
        b.ext(u0, "good", u0);
        // `bad` is in the service alphabet but never allowed: observing
        // it anywhere is a safety violation.
        b.event("bad");
        b.build().unwrap()
    }

    fn ev(name: &str, moves: Vec<(usize, protoquot_spec::StateId)>) -> Action {
        Action::Event {
            event: protoquot_spec::EventId::new(name),
            moves,
        }
    }

    #[test]
    fn safety_failure_shrinks_to_single_event() {
        let system = System::new(vec![sometimes_bad()], ExternalPolicy::AlwaysEnabled);
        let s0 = protoquot_spec::StateId(0);
        // 40 goods, one bad in the middle, more goods after.
        let mut schedule = Vec::new();
        for _ in 0..20 {
            schedule.push(ev("good", vec![(0, s0)]));
        }
        schedule.push(ev("bad", vec![(0, s0)]));
        for _ in 0..20 {
            schedule.push(ev("good", vec![(0, s0)]));
        }
        let min = shrink_schedule(&system, &good_service(), &schedule, FailureKind::Safety);
        assert_eq!(min.len(), 1, "should shrink to just the bad event: {min:?}");
        assert_eq!(min[0], ev("bad", vec![(0, s0)]));
    }

    #[test]
    fn deadlock_failure_shrinks_to_shortest_path() {
        // s0 -a-> s1 -b-> dead, with a self-loop `spin` on s0 padding
        // the schedule.
        let mut b = SpecBuilder::new("D");
        let s0 = b.state("s0");
        let s1 = b.state("s1");
        let s2 = b.state("dead");
        b.ext(s0, "spin", s0);
        b.ext(s0, "a", s1);
        b.ext(s1, "b", s2);
        let spec = b.build().unwrap();
        let system = System::new(vec![spec], ExternalPolicy::AlwaysEnabled);
        let service = good_service(); // watches nothing relevant
        let mut schedule = Vec::new();
        for _ in 0..15 {
            schedule.push(ev("spin", vec![(0, s0)]));
        }
        schedule.push(ev("a", vec![(0, s1)]));
        schedule.push(ev("b", vec![(0, s2)]));
        let min = shrink_schedule(&system, &service, &schedule, FailureKind::Deadlock);
        assert_eq!(min.len(), 2, "deadlock needs exactly a then b: {min:?}");
    }

    #[test]
    fn non_reproducing_schedule_returned_unchanged() {
        let system = System::new(vec![sometimes_bad()], ExternalPolicy::AlwaysEnabled);
        let s0 = protoquot_spec::StateId(0);
        let schedule = vec![ev("good", vec![(0, s0)]); 3];
        let min = shrink_schedule(&system, &good_service(), &schedule, FailureKind::Safety);
        assert_eq!(min.len(), 3);
    }

    #[test]
    fn empty_schedule_terminates_for_both_kinds() {
        // Safety: an empty schedule cannot reproduce, so it comes back
        // unchanged (and empty). Deadlock: a system that is dead from
        // the start reproduces on the empty schedule, which is already
        // minimal. Either way ddmin must terminate immediately.
        let live = System::new(vec![sometimes_bad()], ExternalPolicy::AlwaysEnabled);
        let min = shrink_schedule(&live, &good_service(), &[], FailureKind::Safety);
        assert!(min.is_empty());

        let mut b = SpecBuilder::new("Stuck");
        b.state("s0"); // no transitions at all
        let stuck = System::new(vec![b.build().unwrap()], ExternalPolicy::AlwaysEnabled);
        let min = shrink_schedule(&stuck, &good_service(), &[], FailureKind::Deadlock);
        assert!(min.is_empty());
    }

    #[test]
    fn already_minimal_counterexample_is_returned_verbatim() {
        let system = System::new(vec![sometimes_bad()], ExternalPolicy::AlwaysEnabled);
        let s0 = protoquot_spec::StateId(0);
        let schedule = vec![ev("bad", vec![(0, s0)])];
        let min = shrink_schedule(&system, &good_service(), &schedule, FailureKind::Safety);
        assert_eq!(min, schedule, "a 1-event counterexample cannot shrink");
    }

    #[test]
    fn reorder_fragile_failure_shrinks_to_a_valid_trace() {
        // `bad` is enabled only after `x` (s0 -x-> s1), and `y` undoes
        // the arming (s1 -y-> s0). Deleting a chunk that contains an
        // `x` but not its `bad` leaves later actions dis-enabled, so
        // most ddmin candidates are fragile under this reordering;
        // apply-if-enabled replay must skip them rather than wedge, and
        // the search must still terminate on a genuine failing trace.
        let mut b = SpecBuilder::new("Armed");
        let s0 = b.state("s0");
        let s1 = b.state("armed");
        b.ext(s0, "x", s1);
        b.ext(s1, "y", s0);
        b.ext(s1, "bad", s1);
        let system = System::new(vec![b.build().unwrap()], ExternalPolicy::AlwaysEnabled);

        let mut service = SpecBuilder::new("S");
        let u0 = service.state("u0");
        service.ext(u0, "x", u0);
        service.ext(u0, "y", u0);
        service.event("bad");
        let service = service.build().unwrap();

        let mut schedule = Vec::new();
        for _ in 0..12 {
            schedule.push(ev("x", vec![(0, s1)]));
            schedule.push(ev("y", vec![(0, s0)]));
        }
        schedule.push(ev("x", vec![(0, s1)]));
        schedule.push(ev("bad", vec![(0, s1)]));

        let min = shrink_schedule(&system, &service, &schedule, FailureKind::Safety);
        assert_eq!(min.len(), 2, "minimal arming trace is x then bad: {min:?}");
        // Whatever came back must itself replay to the same failure.
        let replayed = replay(&system, &service, &min, FailureKind::Safety)
            .expect("shrunk schedule must still fail");
        assert_eq!(replayed, min);
    }

    #[test]
    fn inapplicable_actions_are_skipped_not_fatal() {
        let system = System::new(vec![sometimes_bad()], ExternalPolicy::AlwaysEnabled);
        let s0 = protoquot_spec::StateId(0);
        let s9 = protoquot_spec::StateId(9); // nonsense move: never enabled
        let schedule = vec![ev("good", vec![(0, s9)]), ev("bad", vec![(0, s0)])];
        let min = replay(&system, &good_service(), &schedule, FailureKind::Safety).unwrap();
        assert_eq!(min.len(), 1);
    }
}
