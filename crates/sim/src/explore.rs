//! Exhaustive state-space exploration: a small explicit-state model
//! checker over the *closed* system, complementing the random runner.
//!
//! Where [`crate::harness::run_monitored`] samples schedules,
//! [`explore`] visits **every** reachable global state `(component
//! states, service ψ-hub)` up to a budget, so its verdicts are
//! exhaustive:
//!
//! * any reachable service-alphabet event the service cannot accept is
//!   reported as a safety violation with a shortest witness;
//! * any reachable global state with no enabled action is reported as
//!   a deadlock with a shortest witness.
//!
//! For a closed system this agrees with the symbolic checker: the
//! integration tests cross-validate `explore` against
//! `compose` + `satisfies_safety`.

use crate::engine::{Action, System};
use protoquot_spec::{normalize, EventId, Spec, StateId};
use std::collections::{HashMap, VecDeque};

/// Result of an exhaustive exploration.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// Distinct global states visited.
    pub states_visited: usize,
    /// True if the whole reachable space fit in the budget.
    pub complete: bool,
    /// First (shortest) safety violation found: the *monitored* trace
    /// plus the offending event.
    pub violation: Option<(Vec<EventId>, EventId)>,
    /// Shortest path (as monitored trace) to a deadlocked global state,
    /// if any.
    pub deadlock: Option<Vec<EventId>>,
}

impl ExploreResult {
    /// No violation and no deadlock found (and the search completed).
    pub fn is_clean(&self) -> bool {
        self.complete && self.violation.is_none() && self.deadlock.is_none()
    }
}

/// Exhaustively explores the closed system formed by `components`
/// (wired by name, environment always willing), checking the
/// service-alphabet trace against `service`. Stops after `max_states`
/// distinct global states.
///
/// ```
/// use protoquot_sim::explore;
/// use protoquot_spec::SpecBuilder;
/// let mut s = SpecBuilder::new("S");
/// let u0 = s.state("u0");
/// let u1 = s.state("u1");
/// s.ext(u0, "acc", u1);
/// s.ext(u1, "del", u0);
/// let service = s.build().unwrap();
/// let result = explore(vec![service.clone()], &service, 1_000);
/// assert!(result.is_clean());
/// assert_eq!(result.states_visited, 2);
/// ```
pub fn explore(components: Vec<Spec>, service: &Spec, max_states: usize) -> ExploreResult {
    let na = normalize(service);
    let system = System::new(components, crate::engine::ExternalPolicy::AlwaysEnabled);

    type Global = (Vec<StateId>, usize);
    let start: Global = (
        system.components().iter().map(Spec::initial).collect(),
        na.initial_hub(),
    );
    let mut index: HashMap<Global, usize> = HashMap::new();
    let mut parents: Vec<Option<(usize, Option<EventId>)>> = Vec::new();
    let mut keys: Vec<Global> = Vec::new();
    let mut queue = VecDeque::new();
    index.insert(start.clone(), 0);
    keys.push(start);
    parents.push(None);
    queue.push_back(0usize);

    let mut violation = None;
    let mut deadlock: Option<usize> = None;
    let mut complete = true;

    while let Some(i) = queue.pop_front() {
        let (states, hub) = keys[i].clone();
        let actions = system.actions_from(&states);
        if actions.is_empty() && deadlock.is_none() {
            deadlock = Some(i);
        }
        for action in actions {
            let mut next_states = states.clone();
            let mut observed: Option<EventId> = None;
            match &action {
                Action::Internal { component, to } => next_states[*component] = *to,
                Action::Event { event, moves } => {
                    for &(c, t) in moves {
                        next_states[c] = t;
                    }
                    if na.spec().alphabet().contains(*event) {
                        observed = Some(*event);
                    }
                }
            }
            let next_hub = match observed {
                None => hub,
                Some(e) => match na.step(hub, e) {
                    Some(h) => h,
                    None => {
                        if violation.is_none() {
                            violation = Some((monitored_trace(&parents, i), e));
                        }
                        continue;
                    }
                },
            };
            let key = (next_states, next_hub);
            if !index.contains_key(&key) {
                if keys.len() >= max_states {
                    complete = false;
                    continue;
                }
                let id = keys.len();
                index.insert(key.clone(), id);
                keys.push(key);
                parents.push(Some((i, observed)));
                queue.push_back(id);
            }
        }
        if violation.is_some() {
            // Shortest violation found (BFS order); stop expanding.
            break;
        }
    }

    ExploreResult {
        states_visited: keys.len(),
        complete,
        violation,
        deadlock: deadlock.map(|i| monitored_trace(&parents, i)),
    }
}

fn monitored_trace(parents: &[Option<(usize, Option<EventId>)>], mut i: usize) -> Vec<EventId> {
    let mut rev = Vec::new();
    while let Some((p, e)) = parents[i] {
        if let Some(e) = e {
            rev.push(e);
        }
        i = p;
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use protoquot_spec::SpecBuilder;

    fn service() -> Spec {
        let mut b = SpecBuilder::new("S");
        let u0 = b.state("u0");
        let u1 = b.state("u1");
        b.ext(u0, "acc", u1);
        b.ext(u1, "del", u0);
        b.build().unwrap()
    }

    #[test]
    fn clean_system_explores_clean() {
        let mut b = SpecBuilder::new("pipe");
        let p0 = b.state("p0");
        let p1 = b.state("p1");
        b.ext(p0, "acc", p1);
        b.ext(p1, "del", p0);
        let r = explore(vec![b.build().unwrap()], &service(), 1000);
        assert!(r.is_clean(), "{r:?}");
        assert_eq!(r.states_visited, 2);
    }

    #[test]
    fn violation_found_with_shortest_trace() {
        let mut b = SpecBuilder::new("dup");
        let p0 = b.state("p0");
        let p1 = b.state("p1");
        let p2 = b.state("p2");
        b.ext(p0, "acc", p1);
        b.ext(p1, "del", p2);
        b.ext(p2, "del", p0);
        let r = explore(vec![b.build().unwrap()], &service(), 1000);
        let (prefix, event) = r.violation.expect("duplicate found");
        assert_eq!(
            prefix.iter().map(|e| e.name()).collect::<Vec<_>>(),
            ["acc", "del"]
        );
        assert_eq!(event.name(), "del");
    }

    #[test]
    fn deadlock_found_with_witness() {
        let mut b = SpecBuilder::new("stop");
        let p0 = b.state("p0");
        let p1 = b.state("p1");
        b.ext(p0, "acc", p1);
        b.event("del");
        let r = explore(vec![b.build().unwrap()], &service(), 1000);
        let w = r.deadlock.expect("deadlock found");
        assert_eq!(w.iter().map(|e| e.name()).collect::<Vec<_>>(), ["acc"]);
        assert!(r.violation.is_none());
    }

    #[test]
    fn budget_reported_as_incomplete() {
        // A counter that keeps growing its reachable space... finite
        // machines can't, so emulate with a product large enough.
        let mk = |n: &str| {
            let mut b = SpecBuilder::new(n);
            let states: Vec<_> = (0..6).map(|i| b.state(&format!("{n}{i}"))).collect();
            for i in 0..6 {
                b.ext(states[i], &format!("{n}_step"), states[(i + 1) % 6]);
            }
            b.build().unwrap()
        };
        let r = explore(vec![mk("x"), mk("y"), mk("z")], &service(), 10);
        assert!(!r.complete);
        assert_eq!(r.states_visited, 10);
    }

    #[test]
    fn internal_transitions_explored() {
        // A component that can internally slip into a violating branch.
        let mut b = SpecBuilder::new("slippery");
        let p0 = b.state("p0");
        let p1 = b.state("p1");
        let bad = b.state("bad");
        b.ext(p0, "acc", p1);
        b.ext(p1, "del", p0);
        b.int(p1, bad);
        b.ext(bad, "acc", p0); // acc while service expects del
        let r = explore(vec![b.build().unwrap()], &service(), 1000);
        let (prefix, event) = r.violation.expect("internal branch found");
        assert_eq!(prefix.iter().map(|e| e.name()).collect::<Vec<_>>(), ["acc"]);
        assert_eq!(event.name(), "acc");
    }
}
