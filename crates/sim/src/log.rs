//! Execution logging and ASCII message-sequence-chart rendering.
//!
//! A [`TraceEntry`] records one scheduler step; [`render_msc`] draws a
//! fixed-width chart with one column per component — the classic
//! protocol-trace picture, handy for eyeballing a converter at work:
//!
//! ```text
//! step  A0           Ach          C            N1
//! ----- ------------ ------------ ------------ ------------
//!     0 acc          .            .            .
//!     1 -d0 --------> -d0         .            .
//!     3 .            +d0 --------> +d0         .
//! ```

use crate::engine::Action;
use protoquot_spec::EventId;

/// One logged scheduler step.
#[derive(Clone, Debug)]
pub struct TraceEntry {
    /// Scheduler step number (0-based).
    pub step: u64,
    /// What happened.
    pub what: TraceEvent,
}

/// The step's content.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// An internal transition of one component (e.g. a channel loss).
    Internal {
        /// Component index.
        component: usize,
    },
    /// An event fired by the listed components (one = external).
    Event {
        /// The event.
        event: EventId,
        /// Participating component indices, ascending.
        participants: Vec<usize>,
    },
}

impl TraceEntry {
    /// Converts an applied [`Action`] into a log entry.
    pub fn from_action(step: u64, action: &Action) -> TraceEntry {
        let what = match action {
            Action::Internal { component, .. } => TraceEvent::Internal {
                component: *component,
            },
            Action::Event { event, moves } => {
                let mut participants: Vec<usize> = moves.iter().map(|&(c, _)| c).collect();
                participants.sort_unstable();
                participants.dedup();
                TraceEvent::Event {
                    event: *event,
                    participants,
                }
            }
        };
        TraceEntry { step, what }
    }
}

/// Renders a log as an ASCII sequence chart. `names` are the component
/// column headers (index-aligned with the engine's component list).
pub fn render_msc(names: &[&str], entries: &[TraceEntry]) -> String {
    const W: usize = 13;
    let cell = |s: &str| format!("{:<W$}", truncate(s, W - 1));
    let mut out = String::new();
    out.push_str(&format!("{:>5} ", "step"));
    for n in names {
        out.push_str(&cell(n));
    }
    out.push('\n');
    out.push_str(&format!("{:->5} ", ""));
    for _ in names {
        out.push_str(&format!("{:-<w$} ", "", w = W - 1));
    }
    out.push('\n');
    for e in entries {
        out.push_str(&format!("{:>5} ", e.step));
        match &e.what {
            TraceEvent::Internal { component } => {
                for i in 0..names.len() {
                    if i == *component {
                        out.push_str(&cell("~internal~"));
                    } else {
                        out.push_str(&cell("."));
                    }
                }
            }
            TraceEvent::Event {
                event,
                participants,
            } => {
                let first = *participants.first().unwrap_or(&0);
                let last = *participants.last().unwrap_or(&0);
                let name = event.name();
                for i in 0..names.len() {
                    if participants.contains(&i) {
                        // Draw an arrow across the span between the
                        // first and last participants.
                        if participants.len() > 1 && i == first {
                            let arrowed = format!("{name} ");
                            let mut c = format!("{:-<w$}>", arrowed, w = W - 2);
                            c.push(' ');
                            out.push_str(&c);
                        } else {
                            out.push_str(&cell(&name));
                        }
                    } else if i > first && i < last {
                        out.push_str(&cell("------------"));
                    } else {
                        out.push_str(&cell("."));
                    }
                }
            }
        }
        out.push('\n');
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_owned()
    } else {
        s.chars().take(max.saturating_sub(1)).chain(['…']).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Action;
    use protoquot_spec::StateId;

    fn entry_event(step: u64, name: &str, parts: &[usize]) -> TraceEntry {
        TraceEntry::from_action(
            step,
            &Action::Event {
                event: EventId::new(name),
                moves: parts.iter().map(|&c| (c, StateId(0))).collect(),
            },
        )
    }

    #[test]
    fn from_action_sorts_participants() {
        let e = entry_event(3, "sync", &[2, 0]);
        match e.what {
            TraceEvent::Event { participants, .. } => assert_eq!(participants, vec![0, 2]),
            _ => panic!(),
        }
        assert_eq!(e.step, 3);
    }

    #[test]
    fn msc_renders_headers_and_rows() {
        let entries = vec![
            entry_event(0, "acc", &[0]),
            entry_event(1, "-d0", &[0, 1]),
            TraceEntry::from_action(
                2,
                &Action::Internal {
                    component: 1,
                    to: StateId(0),
                },
            ),
        ];
        let msc = render_msc(&["A0", "Ach", "C"], &entries);
        let lines: Vec<&str> = msc.lines().collect();
        assert!(lines[0].contains("A0"));
        assert!(lines[0].contains("Ach"));
        assert!(lines[2].contains("acc"));
        assert!(lines[3].contains("-d0"));
        assert!(lines[3].contains('>'), "arrow expected: {}", lines[3]);
        assert!(lines[4].contains("~internal~"));
    }

    #[test]
    fn long_names_truncated() {
        assert_eq!(truncate("short", 10), "short");
        let t = truncate("averyveryverylongname", 8);
        assert!(t.chars().count() <= 8);
        assert!(t.ends_with('…'));
    }
}
