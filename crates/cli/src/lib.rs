//! # protoquot-cli
//!
//! A command-line front end for the protocol-converter toolkit: author
//! machines in the textual language (see `protoquot-speclang`), then
//! compose, check, derive and simulate from the shell.
//!
//! ```text
//! protoquot parse FILE                          list the specs in a file
//! protoquot show FILE SPEC [--dot]              print one spec (text or DOT)
//! protoquot compose FILE SPEC... [--name N]     compose and print
//! protoquot check FILE --impl S --service A     satisfaction check
//! protoquot solve FILE --service A --int e1,e2 [--b SPEC...]
//!          [--dot] [--prune] [--vacuous] [--reachable] [--threads N]
//! protoquot simulate FILE --service A --components S1,S2,...
//!          [--steps N] [--seed K] [--loss COMP=WEIGHT]...
//! protoquot minimize FILE SPEC                  bisimulation quotient
//! protoquot normalize FILE SPEC                 service normal form
//! protoquot violations FILE --impl S --service A all minimal escapes
//! protoquot explore FILE --service A --components S1,S2,...
//!          [--max-states N]                     exhaustive check
//! protoquot soak (FILE --service A --components S1,... | --builtin NAME [--mutate K])
//!          [--runs N] [--threads T] [--steps N] [--faults loss,dup,reorder,burst]
//!          [--seed S] [--no-shrink] [--json]    fault-injecting soak fleet
//! ```
//!
//! The command logic lives in [`run`], which returns the output as a
//! string so it is unit-testable; `main` is a thin shell around it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use protoquot_core::{prune_useless, solve_with, ProgressStrategy, QuotientOptions};
use protoquot_runtime::{
    adversarial, drive, drive_mux, table_hash, AdversarialConfig, CompiledArtifact, Conn,
    ConnLimits, ConverterRegistry, DriveConfig, FuzzConfig, FuzzTarget, Gateway, GatewayConfig,
    LoopbackConn, LoopbackMux, MuxClient, MuxTransport, ReactorConfig, ReactorServer, TcpConn,
    TcpServer,
};
use protoquot_sim::{
    redirect_transition, run_monitored, FaultPlan, FleetConfig, FleetRunner, MonitorVerdict,
    SimConfig,
};
use protoquot_spec::{
    compile_composite, compose_all, satisfies, tau_star_rows, to_dot, to_text, Alphabet,
    EventTable, Spec,
};
use protoquot_speclang::{parse_source, SourceFile};
use serde::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// A CLI failure: usage problems, file problems, or tool errors, all
/// with a user-facing message.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// The process exit code for this failure. Verdict failures are
    /// distinguished so CI can tell a *convicted converter* (the guard
    /// found the system guilty — exit 2) from an *operational* unclean
    /// campaign (resource rejects or transport errors under
    /// `--expect-clean` — exit 3). Everything else exits 1.
    pub fn exit_code(&self) -> u8 {
        if self.0.starts_with("drive convicted:") {
            2
        } else if self.0.starts_with("drive unclean:") {
            3
        } else {
            1
        }
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Top-level usage text.
pub const USAGE: &str = "protoquot — derive protocol converters (Calvert & Lam, SIGCOMM '89)

usage:
  protoquot parse FILE
  protoquot show FILE SPEC [--dot]
  protoquot compose FILE SPEC... [--name NAME] [--dot]
  protoquot check FILE --impl SPEC --service SPEC
  protoquot solve FILE --service SPEC --int e1,e2,... [--b SPEC...]
            [--dot] [--prune] [--vacuous] [--reachable] [--threads N] [--stats]
            [--emit compiled [--out PATH]]
  protoquot solve FILE --problem NAME [--dot] [--prune] [--vacuous] [--reachable]
            [--threads N] [--stats] [--emit compiled [--out PATH]]
  protoquot solve --builtin colocated|symmetric|ab-nak [--mutate K] [options as above]
  protoquot simulate FILE --service SPEC --components S1,S2,...
            [--steps N] [--seed K] [--loss COMPONENT=WEIGHT]...
  protoquot minimize FILE SPEC
  protoquot normalize FILE SPEC
  protoquot violations FILE --impl SPEC --service SPEC
  protoquot explore FILE --service SPEC --components S1,S2,... [--max-states N]
  protoquot soak FILE --service SPEC --components S1,S2,...
            [--runs N] [--threads T] [--steps N] [--faults loss,dup,reorder,burst]
            [--seed S] [--no-shrink] [--json]
  protoquot soak --builtin colocated|symmetric|ab-nak [--mutate K] [options as above]
  protoquot serve (FILE --service SPEC --components S1,S2,... | --builtin NAME [--mutate K])
            [--addr HOST:PORT] [--transport blocking|reactor] [--loops N]
            [--threads N] [--duration SECS] [--stats] [--frame-budget N]
            [--max-sessions-per-conn N] [--read-deadline SECS] [--no-batch]
            [--registry DIR [--control HOST:PORT]] [--require-hello]
  protoquot reload --control HOST:PORT --artifact PATH
  protoquot drive (FILE --service SPEC --components S1,S2,... | --builtin NAME [--mutate K])
            (--connect HOST:PORT | --loopback) [--runs N] [--threads T] [--steps N]
            [--sessions-per-conn N] [--pipeline N] [--faults loss,dup,reorder,burst]
            [--seed S] [--duration SECS] [--expect-clean] [--adversarial] [--json]
            [--no-batch] [--no-hello]
  protoquot fuzz [FILE --service SPEC --components S1,S2,... | --builtin NAME [--mutate K]]
            [--target codec|guard|gateway|batch|artifact|all] [--seed S] [--iters N]
            [--max-len N] [--no-shrink] [--json]

FILE contains specifications in the textual language, e.g.:

  spec N0 {
    initial n0;
    n0: acc -> n1;
    n1: -D -> n2;
    n2: +A -> n0 | t_N -> n1;
  }
";

/// Executes a CLI invocation (without the program name) and returns its
/// stdout content.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return err(USAGE);
    };
    match cmd.as_str() {
        "parse" => cmd_parse(rest),
        "show" => cmd_show(rest),
        "compose" => cmd_compose(rest),
        "check" => cmd_check(rest),
        "solve" => cmd_solve(rest),
        "simulate" => cmd_simulate(rest),
        "minimize" => cmd_minimize(rest),
        "normalize" => cmd_normalize(rest),
        "violations" => cmd_violations(rest),
        "explore" => cmd_explore(rest),
        "soak" => cmd_soak(rest),
        "serve" => cmd_serve(rest),
        "reload" => cmd_reload(rest),
        "drive" => cmd_drive(rest),
        "fuzz" => cmd_fuzz(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

/// Splits `rest` into positional arguments and `--flag [value]` options.
struct Parsed {
    positional: Vec<String>,
    flags: Vec<(String, Vec<String>)>,
}

/// Which flags take a value.
const VALUED: &[&str] = &[
    "--problem",
    "--name",
    "--impl",
    "--service",
    "--int",
    "--b",
    "--components",
    "--steps",
    "--seed",
    "--loss",
    "--max-states",
    "--threads",
    "--runs",
    "--faults",
    "--builtin",
    "--mutate",
    "--emit",
    "--addr",
    "--connect",
    "--duration",
    "--transport",
    "--loops",
    "--sessions-per-conn",
    "--frame-budget",
    "--max-sessions-per-conn",
    "--read-deadline",
    "--target",
    "--iters",
    "--max-len",
    "--pipeline",
    "--out",
    "--registry",
    "--control",
    "--artifact",
];

fn parse_args(rest: &[String]) -> Result<Parsed, CliError> {
    let mut positional = Vec::new();
    let mut flags: Vec<(String, Vec<String>)> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if let Some(flag) = a.strip_prefix("--").map(|_| a.clone()) {
            if VALUED.contains(&flag.as_str()) {
                let Some(v) = rest.get(i + 1) else {
                    return err(format!("flag {flag} needs a value"));
                };
                match flags.iter_mut().find(|(f, _)| *f == flag) {
                    Some((_, vs)) => vs.push(v.clone()),
                    None => flags.push((flag, vec![v.clone()])),
                }
                i += 2;
            } else {
                if !flags.iter().any(|(f, _)| *f == flag) {
                    flags.push((flag, Vec::new()));
                }
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok(Parsed { positional, flags })
}

impl Parsed {
    fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|(f, _)| f == flag)
    }

    fn value(&self, flag: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(f, _)| f == flag)
            .and_then(|(_, vs)| vs.first())
            .map(String::as_str)
    }

    fn values(&self, flag: &str) -> Vec<&str> {
        self.flags
            .iter()
            .find(|(f, _)| f == flag)
            .map(|(_, vs)| vs.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }
}

fn load(path: &str) -> Result<Vec<Spec>, CliError> {
    Ok(load_source(path)?.specs)
}

fn load_source(path: &str) -> Result<SourceFile, CliError> {
    let source = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    parse_source(&source).map_err(|e| CliError(format!("{path}: {e}")))
}

fn find<'a>(specs: &'a [Spec], name: &str) -> Result<&'a Spec, CliError> {
    specs.iter().find(|s| s.name() == name).ok_or_else(|| {
        CliError(format!(
            "no spec named `{name}` (available: {})",
            specs.iter().map(Spec::name).collect::<Vec<_>>().join(", ")
        ))
    })
}

fn cmd_parse(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let [file] = &p.positional[..] else {
        return err("usage: protoquot parse FILE");
    };
    let specs = load(file)?;
    let mut out = String::new();
    for s in &specs {
        out.push_str(&s.summary());
        out.push('\n');
    }
    Ok(out)
}

fn cmd_show(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let [file, name] = &p.positional[..] else {
        return err("usage: protoquot show FILE SPEC [--dot]");
    };
    let specs = load(file)?;
    let s = find(&specs, name)?;
    Ok(if p.has("--dot") {
        to_dot(s)
    } else {
        to_text(s)
    })
}

fn cmd_compose(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let Some((file, names)) = p.positional.split_first() else {
        return err("usage: protoquot compose FILE SPEC... [--name NAME] [--dot]");
    };
    if names.len() < 2 {
        return err("compose needs at least two spec names");
    }
    let specs = load(file)?;
    let parts: Vec<&Spec> = names
        .iter()
        .map(|n| find(&specs, n))
        .collect::<Result<_, _>>()?;
    let composite = compose_all(&parts)
        .map_err(|e| CliError(e.to_string()))?
        .with_name(p.value("--name").unwrap_or("composite"));
    Ok(if p.has("--dot") {
        to_dot(&composite)
    } else {
        to_text(&composite)
    })
}

fn cmd_check(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let [file] = &p.positional[..] else {
        return err("usage: protoquot check FILE --impl SPEC --service SPEC");
    };
    let specs = load(file)?;
    let imp = find(
        &specs,
        p.value("--impl")
            .ok_or(CliError("--impl required".into()))?,
    )?;
    let srv = find(
        &specs,
        p.value("--service")
            .ok_or(CliError("--service required".into()))?,
    )?;
    match satisfies(imp, srv).map_err(|e| CliError(e.to_string()))? {
        Ok(()) => Ok(format!(
            "OK: `{}` satisfies `{}` (safety and progress)\n",
            imp.name(),
            srv.name()
        )),
        Err(v) => Ok(format!("FAIL: {v}\n")),
    }
}

fn cmd_solve(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    // A built-in target needs no spec file: the configuration carries
    // B, the interface and the service.
    if let Some(name) = p.value("--builtin") {
        if !p.positional.is_empty() {
            return err("--builtin does not take a FILE");
        }
        let (cfg, service) = builtin_configuration(name)?;
        return solve_system(&p, cfg.b, &service, &cfg.int);
    }
    let [file] = &p.positional[..] else {
        return err(
            "usage: protoquot solve (FILE (--problem NAME | --service SPEC --int e1,e2,... \
             [--b SPEC...]) | --builtin colocated|symmetric|ab-nak)",
        );
    };
    let source = load_source(file)?;
    let specs = &source.specs;

    // A declared problem supplies service, components and interface.
    let decl = match p.value("--problem") {
        Some(name) => Some(source.problem(name).ok_or_else(|| {
            CliError(format!(
                "no problem named `{name}` (available: {})",
                source
                    .problems
                    .iter()
                    .map(|d| d.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })?),
        None => None,
    };
    let service_name = match (&decl, p.value("--service")) {
        (Some(d), None) => d.service.as_str(),
        (None, Some(s)) => s,
        (Some(_), Some(_)) => return err("give either --problem or --service, not both"),
        (None, None) => return err("--service (or --problem) required"),
    };
    let srv = find(specs, service_name)?;
    let int: Alphabet = match (&decl, p.value("--int")) {
        (Some(d), None) => d.internal.iter().map(String::as_str).collect(),
        (None, Some(v)) => v.split(',').filter(|s| !s.is_empty()).collect(),
        (Some(_), Some(_)) => return err("give either --problem or --int, not both"),
        (None, None) => return err("--int (or --problem) required"),
    };
    // The fixed components: from the problem, the --b list, or every
    // spec except the service.
    let b_names: Vec<&str> = match &decl {
        Some(d) => d.components.iter().map(String::as_str).collect(),
        None => p.values("--b"),
    };
    let parts: Vec<&Spec> = if b_names.is_empty() {
        specs.iter().filter(|s| s.name() != srv.name()).collect()
    } else {
        b_names
            .iter()
            .map(|n| find(specs, n))
            .collect::<Result<_, _>>()?
    };
    if parts.is_empty() {
        return err("no fixed components: give --b or add specs to the file");
    }
    let b = if parts.len() == 1 {
        parts[0].clone()
    } else {
        compose_all(&parts).map_err(|e| CliError(e.to_string()))?
    };
    let srv = srv.clone();
    solve_system(&p, b, &srv, &int)
}

/// The shared back half of `solve`: derives the converter for one
/// resolved quotient problem and renders/emits it per the flags.
fn solve_system(p: &Parsed, b: Spec, srv: &Spec, int: &Alphabet) -> Result<String, CliError> {
    let safety_threads: usize = match p.value("--threads") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError("--threads must be a number".into()))?,
        None => 1,
    };
    let options = QuotientOptions {
        include_vacuous: p.has("--vacuous"),
        strategy: if p.has("--reachable") {
            ProgressStrategy::ReachableProduct
        } else {
            ProgressStrategy::FullProduct
        },
        safety_threads,
        ..Default::default()
    };
    let mut out = String::new();
    out.push_str(&format!(
        "B = {} ({} states); service = {}; Int = {}\n",
        b.name(),
        b.num_states(),
        srv.name(),
        int
    ));
    match solve_with(&b, srv, int, &options) {
        Ok(q) => {
            let converter = if p.has("--prune") {
                prune_useless(&b, srv, &q.converter)
            } else {
                q.converter
            };
            // A deliberate bug, e.g. to exercise registry admission:
            // redirect the K-th external transition of the derived
            // converter before verification and emission.
            let converter = match p.value("--mutate") {
                Some(k) => {
                    let k: usize = k
                        .parse()
                        .map_err(|_| CliError("--mutate must be a transition index".into()))?;
                    redirect_transition(&converter, k).ok_or_else(|| {
                        CliError(format!(
                            "--mutate {k}: converter has only {} external transitions",
                            converter.num_external()
                        ))
                    })?
                }
                None => converter,
            };
            out.push_str(&format!(
                "converter derived: {} states, {} transitions \
                 (safety {} states, progress removed {} in {} iterations)\n",
                converter.num_states(),
                converter.num_external(),
                q.stats.safety_states,
                q.stats.removed_states,
                q.stats.progress_iterations
            ));
            if p.has("--stats") {
                // The wire identity the runtime will negotiate: the
                // name-sorted event table of the service alphabet.
                let tbl = EventTable::new(srv.alphabet());
                out.push_str(&format!(
                    "event table: {} events, hash {:016x}\n",
                    tbl.len(),
                    table_hash(&tbl)
                ));
                let se = &q.stats.safety_engine;
                out.push_str(&format!(
                    "safety engine: {} states, {} transitions, {} dedup hits, \
                     {} arena bytes, {} threads\n",
                    se.states, se.transitions, se.dedup_hits, se.arena_bytes, se.threads
                ));
                // Re-verify the emitted converter on the compiled
                // verification engine and report its counters.
                match protoquot_core::converter_verdict_with(&b, srv, &converter, safety_threads) {
                    Ok((verdict, ve)) => {
                        let outcome = match verdict {
                            Ok(()) => "verified".to_string(),
                            Err(v) => format!("REJECTED: {v}"),
                        };
                        out.push_str(&format!(
                            "verify engine: {} states, {} transitions, {} hubs, {} pairs, \
                             {} dedup hits, {} arena bytes, {} threads; {}\n",
                            ve.states,
                            ve.transitions,
                            ve.hubs,
                            ve.pairs,
                            ve.dedup_hits,
                            ve.arena_bytes,
                            ve.threads,
                            outcome
                        ));
                    }
                    Err(e) => {
                        out.push_str(&format!("verify engine: setup error: {e}\n"));
                    }
                }
            }
            out.push('\n');
            match p.value("--emit") {
                Some("compiled") => {
                    out.push_str(&emit_compiled(&b, srv, &converter)?);
                    out.push('\n');
                    if let Some(path) = p.value("--out") {
                        out.push_str(&emit_artifact(&b, srv, &converter, path)?);
                    }
                }
                Some(other) => {
                    return err(format!(
                        "--emit: unknown format `{other}` (known: compiled)"
                    ))
                }
                None if p.value("--out").is_some() => {
                    return err("--out needs --emit compiled");
                }
                None => out.push_str(&if p.has("--json") {
                    protoquot_spec::serde_impl::to_json(&converter)
                } else if p.has("--dot") {
                    to_dot(&converter)
                } else {
                    to_text(&converter)
                }),
            }
            Ok(out)
        }
        Err(e) => {
            out.push_str(&format!("no converter: {e}\n"));
            if let protoquot_core::QuotientError::NoProgressingConverter {
                witness: Some(w), ..
            } = &e
            {
                out.push_str(&format!(
                    "first conflict: after converter trace `{}`, the service needs one \
                     of {:?} but the composite can only offer {}\n",
                    protoquot_spec::trace_string(&w.trace),
                    w.needed,
                    w.offered
                ));
            }
            Ok(out)
        }
    }
}

fn cmd_simulate(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let [file] = &p.positional[..] else {
        return err(
            "usage: protoquot simulate FILE --service SPEC --components S1,S2,... \
             [--steps N] [--seed K] [--loss COMPONENT=WEIGHT]...",
        );
    };
    let specs = load(file)?;
    let srv = find(
        &specs,
        p.value("--service")
            .ok_or(CliError("--service required".into()))?,
    )?;
    let comp_names: Vec<&str> = p
        .value("--components")
        .ok_or(CliError("--components required".into()))?
        .split(',')
        .filter(|s| !s.is_empty())
        .collect();
    let components: Vec<Spec> = comp_names
        .iter()
        .map(|n| find(&specs, n).cloned())
        .collect::<Result<_, _>>()?;
    let steps: u64 = match p.value("--steps") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError("--steps must be a number".into()))?,
        None => 10_000,
    };
    let seed: u64 = match p.value("--seed") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError("--seed must be a number".into()))?,
        None => 0,
    };
    let mut internal_weights = Vec::new();
    for lw in p.values("--loss") {
        let Some((name, w)) = lw.split_once('=') else {
            return err("--loss takes COMPONENT=WEIGHT");
        };
        let Some(idx) = comp_names.iter().position(|n| *n == name) else {
            return err(format!("--loss: `{name}` is not in --components"));
        };
        let w: u32 = w
            .parse()
            .map_err(|_| CliError("--loss weight must be a number".into()))?;
        internal_weights.push((idx, w));
    }
    let report = run_monitored(
        components,
        srv,
        &SimConfig {
            seed,
            max_steps: steps,
            internal_weights,
        },
    );
    let mut out = String::new();
    out.push_str(&format!("ran {} steps (seed {seed})\n", report.steps));
    for (name, count) in &report.monitored_counts {
        out.push_str(&format!("  {name}: {count}\n"));
    }
    for (i, n) in comp_names.iter().enumerate() {
        if report.internal_counts[i] > 0 {
            out.push_str(&format!(
                "  internal transitions of {n}: {}\n",
                report.internal_counts[i]
            ));
        }
    }
    if report.deadlocked {
        out.push_str("DEADLOCK: the system stopped before the step budget\n");
    }
    match &report.verdict {
        MonitorVerdict::Conforming => out.push_str("service monitor: conforming\n"),
        MonitorVerdict::SafetyViolation { position, event } => out.push_str(&format!(
            "service monitor: VIOLATION at observed event #{position} (`{event}`)\n"
        )),
    }
    Ok(out)
}

fn cmd_minimize(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let [file, name] = &p.positional[..] else {
        return err("usage: protoquot minimize FILE SPEC");
    };
    let specs = load(file)?;
    let s = find(&specs, name)?;
    let m = protoquot_spec::minimize(s);
    Ok(format!(
        "{} -> {} states\n{}",
        s.num_states(),
        m.num_states(),
        to_text(&m)
    ))
}

fn cmd_normalize(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let [file, name] = &p.positional[..] else {
        return err("usage: protoquot normalize FILE SPEC");
    };
    let specs = load(file)?;
    let s = find(&specs, name)?;
    let already = protoquot_spec::is_normal_form(s);
    let n = protoquot_spec::normalize(s);
    Ok(format!(
        "input {} in normal form; {} hubs\n{}",
        if already { "already" } else { "not" },
        n.num_hubs(),
        to_text(n.spec())
    ))
}

fn cmd_violations(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let [file] = &p.positional[..] else {
        return err("usage: protoquot violations FILE --impl SPEC --service SPEC");
    };
    let specs = load(file)?;
    let imp = find(
        &specs,
        p.value("--impl")
            .ok_or(CliError("--impl required".into()))?,
    )?;
    let srv = find(
        &specs,
        p.value("--service")
            .ok_or(CliError("--service required".into()))?,
    )?;
    if imp.alphabet() != srv.alphabet() {
        return err(format!(
            "interface mismatch: {} vs {}",
            imp.alphabet(),
            srv.alphabet()
        ));
    }
    let vs = protoquot_spec::all_minimal_violations(imp, srv);
    if vs.is_empty() {
        return Ok(format!(
            "no violations: every trace of `{}` is a trace of `{}`\n",
            imp.name(),
            srv.name()
        ));
    }
    let mut out = format!("{} minimal violation(s):\n", vs.len());
    for v in vs {
        out.push_str(&format!(
            "  `{}` (state {} enables `{}`)\n",
            protoquot_spec::trace_string(&v.trace()),
            imp.state_name(v.b_state),
            v.event
        ));
    }
    Ok(out)
}

fn cmd_explore(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let [file] = &p.positional[..] else {
        return err(
            "usage: protoquot explore FILE --service SPEC --components S1,S2,... \
             [--max-states N]",
        );
    };
    let specs = load(file)?;
    let srv = find(
        &specs,
        p.value("--service")
            .ok_or(CliError("--service required".into()))?,
    )?;
    let components: Vec<Spec> = p
        .value("--components")
        .ok_or(CliError("--components required".into()))?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|n| find(&specs, n).cloned())
        .collect::<Result<_, _>>()?;
    let max_states: usize = match p.value("--max-states") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError("--max-states must be a number".into()))?,
        None => 1_000_000,
    };
    let r = protoquot_sim::explore(components, srv, max_states);
    let mut out = format!(
        "explored {} global states ({})\n",
        r.states_visited,
        if r.complete { "complete" } else { "budget hit" }
    );
    match &r.violation {
        Some((prefix, e)) => out.push_str(&format!(
            "VIOLATION: after `{}`, event `{e}` is not allowed by the service\n",
            protoquot_spec::trace_string(prefix)
        )),
        None => out.push_str("no safety violation reachable\n"),
    }
    match &r.deadlock {
        Some(w) => out.push_str(&format!(
            "DEADLOCK reachable after `{}`\n",
            protoquot_spec::trace_string(w)
        )),
        None => out.push_str("no deadlock reachable\n"),
    }
    Ok(out)
}

/// Builds the components + service of a built-in §5 soak target:
/// `colocated` (Fig. 13/14, exactly-once), `symmetric` (Fig. 9 with the
/// §5 at-least-once weakening) or `ab-nak` (the ABP↔NAK variant,
/// exactly-once). The converter is derived on the spot; `--mutate K`
/// redirects its `K`-th external transition to seed a deliberate bug.
fn builtin_soak_system(name: &str, mutate: Option<&str>) -> Result<(Vec<Spec>, Spec), CliError> {
    let (cfg, service) = builtin_configuration(name)?;
    let q = protoquot_core::solve(&cfg.b, &service, &cfg.int)
        .map_err(|e| CliError(format!("cannot derive the {name} converter: {e}")))?;
    let mut converter = q.converter;
    if let Some(k) = mutate {
        let k: usize = k
            .parse()
            .map_err(|_| CliError("--mutate must be a transition index".into()))?;
        converter = redirect_transition(&converter, k).ok_or_else(|| {
            CliError(format!(
                "--mutate {k}: converter has only {} external transitions",
                converter.num_external()
            ))
        })?;
    }
    Ok((vec![cfg.b, converter], service))
}

/// The raw quotient configuration of one built-in §5 target: the fixed
/// components composed as `B`, the interface alphabet, and the service
/// contract.
fn builtin_configuration(
    name: &str,
) -> Result<(protoquot_protocols::paper::Configuration, Spec), CliError> {
    use protoquot_protocols::paper::{colocated_configuration, symmetric_configuration};
    use protoquot_protocols::service::{at_least_once, exactly_once};
    Ok(match name {
        "colocated" => (colocated_configuration(), exactly_once()),
        "symmetric" => (symmetric_configuration(), at_least_once()),
        "ab-nak" => (
            protoquot_protocols::nak::ab_to_nak_configuration(),
            exactly_once(),
        ),
        other => {
            return err(format!(
                "unknown builtin `{other}` (known: colocated, symmetric, ab-nak)"
            ))
        }
    })
}

/// Resolves the soak/serve/drive target system: either `--builtin NAME
/// [--mutate K]` or FILE with `--service`/`--components` (the listed
/// components must include the converter).
fn load_target(p: &Parsed, usage: &str) -> Result<(Vec<Spec>, Spec), CliError> {
    if let Some(builtin) = p.value("--builtin") {
        if !p.positional.is_empty() {
            return err("--builtin does not take a FILE");
        }
        builtin_soak_system(builtin, p.value("--mutate"))
    } else {
        let [file] = &p.positional[..] else {
            return err(usage);
        };
        let specs = load(file)?;
        let srv = find(
            &specs,
            p.value("--service")
                .ok_or(CliError("--service required".into()))?,
        )?;
        let components: Vec<Spec> = p
            .value("--components")
            .ok_or(CliError("--components required".into()))?
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|n| find(&specs, n).cloned())
            .collect::<Result<_, _>>()?;
        Ok((components, srv.clone()))
    }
}

fn cmd_soak(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let (components, service) = load_target(
        &p,
        "usage: protoquot soak (FILE --service SPEC --components S1,S2,... | \
         --builtin colocated|symmetric|ab-nak [--mutate K]) [--runs N] [--threads T] \
         [--steps N] [--faults loss,dup,reorder,burst] [--seed S] [--no-shrink] [--json]",
    )?;
    let parse_num = |flag: &str, default: u64| -> Result<u64, CliError> {
        match p.value(flag) {
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("{flag} must be a number"))),
            None => Ok(default),
        }
    };
    let faults = FaultPlan::parse(p.value("--faults").unwrap_or(""))
        .map_err(|e| CliError(format!("--faults: {e}")))?;
    let config = FleetConfig {
        runs: parse_num("--runs", 1_000)?,
        threads: parse_num("--threads", 1)? as usize,
        seed: parse_num("--seed", 0xC0FFEE)?,
        max_steps: parse_num("--steps", 2_000)?,
        faults,
        shrink: !p.has("--no-shrink"),
        ..FleetConfig::default()
    };
    let runner = FleetRunner::new(components, service);
    // Static oracle on the compiled verification engine, so every soak
    // prints what the formalism says *before* the dynamic evidence.
    let static_line = match runner.static_verdict(config.threads) {
        Ok((Ok(()), stats)) => format!("static verdict: Conforming ({stats})\n"),
        Ok((Err(v), stats)) => format!("static verdict: NON-CONFORMING: {v} ({stats})\n"),
        Err(e) => format!("static verdict: setup error: {e}\n"),
    };
    let report = runner.run(&config);
    Ok(if p.has("--json") {
        let mut json = report.to_json();
        json.push('\n');
        json
    } else {
        format!("{static_line}{report}")
    })
}

/// JSON dump of the compiled CSR automaton of `B ‖ C` over the shared
/// name-sorted event table: states, event-indexed external adjacency,
/// internal adjacency, and `τ*` rows — everything the runtime guard
/// loads, emitted so external tools can consume a derived converter
/// without re-deriving it.
fn emit_compiled(b: &Spec, srv: &Spec, converter: &Spec) -> Result<String, CliError> {
    let parts = [b, converter];
    let tbl = EventTable::new(srv.alphabet());
    let comp = compile_composite(&parts, &tbl).map_err(|e| CliError(e.to_string()))?;
    let words = tbl.words();
    let tau = tau_star_rows(&comp, words);
    let mut o = BTreeMap::new();
    o.insert(
        "event_table".into(),
        Value::Arr(tbl.events.iter().map(|e| Value::Str(e.name())).collect()),
    );
    o.insert("states".into(), Value::Int(comp.n as i128));
    o.insert("initial".into(), Value::Int(comp.initial as i128));
    o.insert(
        "transitions".into(),
        Value::Int(comp.num_transitions() as i128),
    );
    let mut ext = Vec::with_capacity(comp.n);
    let mut int = Vec::with_capacity(comp.n);
    let mut tau_rows = Vec::with_capacity(comp.n);
    for s in 0..comp.n {
        ext.push(Value::Arr(
            (comp.ext_off[s] as usize..comp.ext_off[s + 1] as usize)
                .map(|k| {
                    Value::Arr(vec![
                        Value::Int(comp.ext_ev[k] as i128),
                        Value::Int(comp.ext_tgt[k] as i128),
                    ])
                })
                .collect(),
        ));
        int.push(Value::Arr(
            (comp.int_off[s] as usize..comp.int_off[s + 1] as usize)
                .map(|k| Value::Int(comp.int_tgt[k] as i128))
                .collect(),
        ));
        let row = &tau[s * words..(s + 1) * words];
        tau_rows.push(Value::Arr(
            (0..tbl.len() as u32)
                .filter(|&i| row[(i / 64) as usize] >> (i % 64) & 1 == 1)
                .map(|i| Value::Int(i as i128))
                .collect(),
        ));
    }
    o.insert("external".into(), Value::Arr(ext));
    o.insert("internal".into(), Value::Arr(int));
    o.insert("tau_star".into(), Value::Arr(tau_rows));
    serde_json::to_string(&Value::Obj(o)).map_err(|e| CliError(e.to_string()))
}

/// Writes the binary `PQCA` artifact of the derived system to `path`
/// and returns a receipt line with the content and event-table hashes
/// — everything `protoquot reload` needs to take it live.
fn emit_artifact(b: &Spec, srv: &Spec, converter: &Spec, path: &str) -> Result<String, CliError> {
    let parts = [b, converter];
    let bytes = protoquot_runtime::artifact::encode(&parts, srv)
        .map_err(|e| CliError(format!("cannot compile the artifact: {e}")))?;
    let artifact =
        CompiledArtifact::decode(&bytes).expect("a freshly encoded artifact always decodes");
    std::fs::write(path, &bytes).map_err(|e| CliError(format!("cannot write `{path}`: {e}")))?;
    Ok(format!(
        "wrote {path}: {} bytes, content {:016x}, event table {:016x}\n",
        bytes.len(),
        artifact.content_hash,
        artifact.table_hash
    ))
}

fn parse_duration(p: &Parsed) -> Result<Option<Duration>, CliError> {
    match p.value("--duration") {
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|_| CliError("--duration must be seconds".into()))?;
            Ok(Some(Duration::from_secs_f64(secs)))
        }
        None => Ok(None),
    }
}

fn cmd_serve(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let (components, service) = load_target(
        &p,
        "usage: protoquot serve (FILE --service SPEC --components S1,S2,... | \
         --builtin colocated|symmetric|ab-nak [--mutate K]) [--addr HOST:PORT] \
         [--transport blocking|reactor] [--loops N] [--threads N] \
         [--duration SECS] [--stats] [--frame-budget N] \
         [--max-sessions-per-conn N] [--read-deadline SECS] [--no-batch] \
         [--registry DIR [--control HOST:PORT]] [--require-hello]",
    )?;
    let workers: usize = match p.value("--threads") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError("--threads must be a number".into()))?,
        None => 4,
    };
    let frame_budget: u64 = match p.value("--frame-budget") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError("--frame-budget must be a number (0 disables)".into()))?,
        None => 0,
    };
    let mut limits = ConnLimits::default();
    if let Some(v) = p.value("--max-sessions-per-conn") {
        limits.max_sessions_per_conn = v.parse().map_err(|_| {
            CliError("--max-sessions-per-conn must be a number (0 disables)".into())
        })?;
    }
    if let Some(v) = p.value("--read-deadline") {
        let secs: f64 = v
            .parse()
            .map_err(|_| CliError("--read-deadline must be seconds (0 disables)".into()))?;
        limits.read_deadline = Duration::from_secs_f64(secs);
    }
    limits.require_hello = p.has("--require-hello");
    let loops: usize = match p.value("--loops") {
        Some(v) => v
            .parse()
            .map_err(|_| CliError("--loops must be a number".into()))?,
        None => ReactorConfig::default().loops,
    };
    let transport = p.value("--transport").unwrap_or("blocking");
    if !matches!(transport, "blocking" | "reactor") {
        return err("--transport must be `blocking` or `reactor`");
    }
    let duration = parse_duration(&p)?;
    let parts: Vec<&Spec> = components.iter().collect();
    let cfg = GatewayConfig {
        workers,
        session_frame_budget: frame_budget,
        // `--no-batch` drops every transport back to the per-frame
        // dispatch path — the differential oracle for the batched one.
        batching: !p.has("--no-batch"),
        ..GatewayConfig::default()
    };
    let gw = Gateway::new(&parts, &service, cfg).map_err(|e| CliError(e.to_string()))?;
    let mut out = String::new();
    // The registry + control surface: verified artifacts admitted over
    // the control socket hot-swap the serving gateway.
    let mut control = None;
    if let Some(dir) = p.value("--registry") {
        let registry = ConverterRegistry::open(dir, &service, gw.active_version())
            .map_err(|e| CliError(format!("cannot open registry `{dir}`: {e}")))?
            .with_verify_threads(workers);
        if let Some(addr) = p.value("--control") {
            let c = ControlServer::bind(addr, registry, gw.clone())
                .map_err(|e| CliError(format!("cannot bind control socket {addr}: {e}")))?;
            println!("control on {}", c.local_addr());
            out.push_str(&format!("control on {}\n", c.local_addr()));
            control = Some(c);
        }
    } else if p.value("--control").is_some() {
        return err("--control needs --registry DIR");
    }
    enum Server {
        Blocking(TcpServer),
        Reactor(ReactorServer),
    }
    let mut server = None;
    if let Some(addr) = p.value("--addr") {
        let (s, local) = match transport {
            "reactor" => {
                let cfg = ReactorConfig {
                    loops,
                    limits,
                    ..ReactorConfig::default()
                };
                let s = ReactorServer::bind(gw.clone(), addr, cfg)
                    .map_err(|e| CliError(format!("cannot bind {addr}: {e}")))?;
                let local = s.local_addr();
                (Server::Reactor(s), local)
            }
            _ => {
                let s = TcpServer::bind_with(gw.clone(), addr, limits)
                    .map_err(|e| CliError(format!("cannot bind {addr}: {e}")))?;
                let local = s.local_addr();
                (Server::Blocking(s), local)
            }
        };
        // Printed immediately (not just returned) so scripts can scrape
        // the bound port before the serve loop ends.
        println!("serving on {local}");
        out.push_str(&format!("served on {local}\n"));
        server = Some(s);
    }
    let deadline = duration.map(|d| std::time::Instant::now() + d);
    let mut last_snapshot = std::time::Instant::now();
    loop {
        match deadline {
            Some(d) if std::time::Instant::now() >= d => break,
            // Without --addr there is no traffic source to wait for.
            None if server.is_none() => break,
            _ => {}
        }
        std::thread::sleep(Duration::from_millis(100));
        gw.evict_idle();
        if p.has("--stats") && last_snapshot.elapsed() >= Duration::from_secs(5) {
            println!("{}", gw.stats().to_json());
            last_snapshot = std::time::Instant::now();
        }
    }
    match server {
        Some(Server::Blocking(mut s)) => s.stop(),
        Some(Server::Reactor(mut s)) => s.stop(),
        None => {}
    }
    if let Some(c) = control {
        c.stop();
    }
    gw.drain();
    let snap = gw.stats();
    out.push_str(&format!("{snap}\n"));
    if p.has("--stats") {
        out.push_str(&snap.to_json());
        out.push('\n');
    }
    Ok(out)
}

/// The reload control surface of `protoquot serve`: a line-oriented
/// TCP listener answering `reload PATH` by running the artifact at
/// PATH through the registry's admission gate (decode, rebuild,
/// re-verify against the pinned service) and, on admission, hot-swapping
/// the serving gateway — new sessions bind the new version, existing
/// sessions drain on the old one.
///
/// Replies are a single line: `ok version N content HASH table HASH`
/// or `error: ...`. The listener serves one command per connection.
struct ControlServer {
    local: std::net::SocketAddr,
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ControlServer {
    fn bind(
        addr: &str,
        mut registry: ConverterRegistry,
        gw: Gateway,
    ) -> std::io::Result<ControlServer> {
        use std::io::{BufRead, BufReader, Write};
        use std::sync::atomic::{AtomicBool, Ordering};
        let listener = std::net::TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let stopped = std::sync::Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stopped.load(Ordering::Relaxed) {
                let (stream, _) = match listener.accept() {
                    Ok(conn) => conn,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(25));
                        continue;
                    }
                    Err(_) => break,
                };
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                if reader.read_line(&mut line).is_err() {
                    continue;
                }
                let reply = match line.trim().strip_prefix("reload ") {
                    Some(path) if !path.is_empty() => {
                        match Self::reload(&mut registry, &gw, path.trim()) {
                            Ok(msg) => msg,
                            Err(e) => format!("error: {e}"),
                        }
                    }
                    _ => "error: expected `reload PATH`".to_string(),
                };
                let mut stream = reader.into_inner();
                let _ = writeln!(stream, "{reply}");
            }
        });
        Ok(ControlServer {
            local,
            stop,
            handle: Some(handle),
        })
    }

    /// Admission then swap; refusal at either gate leaves the old
    /// version serving untouched.
    fn reload(
        registry: &mut ConverterRegistry,
        gw: &Gateway,
        path: &str,
    ) -> Result<String, String> {
        let admitted = registry.admit_file(path).map_err(|e| e.to_string())?;
        gw.swap(admitted.version, admitted.program)
            .map_err(|e| e.to_string())?;
        Ok(format!(
            "ok version {} content {:016x} table {:016x}",
            admitted.version, admitted.content_hash, admitted.table_hash
        ))
    }

    fn local_addr(&self) -> std::net::SocketAddr {
        self.local
    }

    fn stop(mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// `protoquot reload`: asks a serving gateway's control socket to
/// admit and hot-swap the artifact at `--artifact PATH` (a path on the
/// server's filesystem, as emitted by `solve --emit compiled --out`).
fn cmd_reload(rest: &[String]) -> Result<String, CliError> {
    use std::io::{BufRead, BufReader, Write};
    let p = parse_args(rest)?;
    let usage = "usage: protoquot reload --control HOST:PORT --artifact PATH";
    let Some(addr) = p.value("--control") else {
        return err(usage);
    };
    let Some(path) = p.value("--artifact") else {
        return err(usage);
    };
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError(format!("cannot reach control socket {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| CliError(e.to_string()))?;
    writeln!(stream, "reload {path}").map_err(|e| CliError(format!("control send: {e}")))?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| CliError(format!("control read: {e}")))?;
    let line = line.trim();
    if line.starts_with("ok ") {
        Ok(format!("{line}\n"))
    } else if line.is_empty() {
        err("control socket closed without a reply")
    } else {
        err(format!("reload refused: {line}"))
    }
}

fn cmd_drive(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    // The adversarial campaign attacks the wire itself — no spec needed
    // (and none consulted), so it branches before target loading.
    if p.has("--adversarial") {
        let Some(addr) = p.value("--connect") else {
            return err("--adversarial needs --connect HOST:PORT (it attacks the wire itself)");
        };
        let report = adversarial(addr, &AdversarialConfig::default())
            .map_err(|e| CliError(format!("adversarial campaign failed to run: {e}")))?;
        let out = if p.has("--json") {
            let mut json = report.to_json();
            json.push('\n');
            json
        } else {
            format!("{report}")
        };
        if p.has("--expect-clean") && !report.is_contained() {
            return err(format!(
                "drive unclean: adversarial campaign not contained \
                 (an attack was neither convicted nor evicted):\n{report}"
            ));
        }
        return Ok(out);
    }
    let (components, service) = load_target(
        &p,
        "usage: protoquot drive (FILE --service SPEC --components S1,S2,... | \
         --builtin colocated|symmetric|ab-nak [--mutate K]) (--connect HOST:PORT | \
         --loopback) [--runs N] [--threads T] [--steps N] [--sessions-per-conn N] \
         [--pipeline N] [--faults loss,dup,reorder,burst] [--seed S] [--duration SECS] \
         [--expect-clean] [--adversarial] [--json] [--no-batch] [--no-hello]",
    )?;
    let parse_num = |flag: &str, default: u64| -> Result<u64, CliError> {
        match p.value(flag) {
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("{flag} must be a number"))),
            None => Ok(default),
        }
    };
    let faults = FaultPlan::parse(p.value("--faults").unwrap_or(""))
        .map_err(|e| CliError(format!("--faults: {e}")))?;
    let pipeline = parse_num("--pipeline", 1)?;
    if !(1..=64).contains(&pipeline) {
        return err("--pipeline must be between 1 and 64");
    }
    let cfg = DriveConfig {
        runs: parse_num("--runs", 100)?,
        threads: parse_num("--threads", 1)? as usize,
        seed: parse_num("--seed", 0xD41E)?,
        max_steps: parse_num("--steps", 600)?,
        faults,
        duration: parse_duration(&p)?,
        sessions_per_conn: parse_num("--sessions-per-conn", 1)?,
        pipeline,
        ..DriveConfig::default()
    };
    // `--sessions-per-conn` selects the multiplexed campaign: the same
    // per-session state machines, batched over one connection per
    // thread instead of one blocking call per frame. `--pipeline` is a
    // property of that campaign, so it selects it too.
    let mux = p.value("--sessions-per-conn").is_some() || p.value("--pipeline").is_some();
    let report = match (p.value("--connect"), p.has("--loopback")) {
        (Some(addr), false) => {
            let addr = addr.to_string();
            // Negotiate the wire identity at connection open (the
            // event-table hash is derived from the service alphabet,
            // exactly as the server derives its own); `--no-hello`
            // drives as a legacy peer instead.
            let hash =
                (!p.has("--no-hello")).then(|| table_hash(&EventTable::new(service.alphabet())));
            if mux {
                drive_mux(&components, &service, &cfg, move || {
                    match hash {
                        Some(h) => MuxClient::connect_negotiated(&addr, h),
                        None => MuxClient::connect(&addr),
                    }
                    .map(|c| Box::new(c) as Box<dyn MuxTransport>)
                })
            } else {
                drive(&components, &service, &cfg, move || {
                    match hash {
                        Some(h) => TcpConn::connect_negotiated(&addr, h),
                        None => TcpConn::connect(&addr),
                    }
                    .map(|c| Box::new(c) as Box<dyn Conn>)
                })
            }
        }
        (None, true) => {
            let parts: Vec<&Spec> = components.iter().collect();
            let gw_cfg = GatewayConfig {
                workers: cfg.threads.max(1),
                batching: !p.has("--no-batch"),
                ..GatewayConfig::default()
            };
            let gw = Gateway::new(&parts, &service, gw_cfg).map_err(|e| CliError(e.to_string()))?;
            let report = if mux {
                drive_mux(&components, &service, &cfg, || {
                    Ok(Box::new(LoopbackMux::new(gw.clone())) as Box<dyn MuxTransport>)
                })
            } else {
                drive(&components, &service, &cfg, || {
                    Ok(Box::new(LoopbackConn::new(gw.clone())) as Box<dyn Conn>)
                })
            };
            gw.drain();
            report
        }
        _ => return err("give exactly one of --connect HOST:PORT or --loopback"),
    };
    let out = if p.has("--json") {
        let mut json = report.to_json();
        json.push('\n');
        json
    } else {
        format!("{report}\n")
    };
    if p.has("--expect-clean") && !report.is_clean() {
        // Convictions are verdicts against the converter; everything
        // else unclean is operational. CI keys its exit code off the
        // message prefix (see `CliError::exit_code`).
        if report.convicted_runs > 0 {
            return err(format!(
                "drive convicted: the online guard convicted {} run(s): {report}",
                report.convicted_runs
            ));
        }
        return err(format!(
            "drive unclean: {} operational reject(s) and {} transport error(s) \
             (no convictions): {report}",
            report.rejected_runs, report.io_errors
        ));
    }
    Ok(out)
}

/// `protoquot fuzz`: the deterministic fuzz engine over the codec,
/// guard, gateway, batch-dispatch, and artifact-loader targets.
/// Without a FILE or
/// `--builtin` the colocated paper system is fuzzed (the targets need
/// *a* compiled system; hostile inputs do not care which).
fn cmd_fuzz(rest: &[String]) -> Result<String, CliError> {
    let p = parse_args(rest)?;
    let (components, service) = if p.value("--builtin").is_none() && p.positional.is_empty() {
        builtin_soak_system("colocated", p.value("--mutate"))?
    } else {
        load_target(
            &p,
            "usage: protoquot fuzz [FILE --service SPEC --components S1,S2,... | \
                 --builtin colocated|symmetric|ab-nak [--mutate K]] \
                 [--target codec|guard|gateway|batch|artifact|all] [--seed S] [--iters N] \
                 [--max-len N] [--no-shrink] [--json]",
        )?
    };
    // Seeds round-trip through the report, which prints them in hex;
    // accept both `0x…` and decimal so a red report reproduces by
    // copy-paste.
    let parse_num = |flag: &str, default: u64| -> Result<u64, CliError> {
        match p.value(flag) {
            Some(v) => match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            }
            .map_err(|_| CliError(format!("{flag} must be a number"))),
            None => Ok(default),
        }
    };
    let defaults = FuzzConfig::default();
    let cfg = FuzzConfig {
        seed: parse_num("--seed", defaults.seed)?,
        iters: parse_num("--iters", defaults.iters)?,
        max_len: parse_num("--max-len", defaults.max_len as u64)? as usize,
        shrink: !p.has("--no-shrink"),
        ..defaults
    };
    let targets: Vec<FuzzTarget> = match p.value("--target").unwrap_or("all") {
        "all" => FuzzTarget::ALL.to_vec(),
        name => match FuzzTarget::parse(name) {
            Some(t) => vec![t],
            None => return err("--target must be codec, guard, gateway, batch, artifact, or all"),
        },
    };
    let parts: Vec<&Spec> = components.iter().collect();
    let started = std::time::Instant::now();
    let report = protoquot_runtime::fuzz::fuzz(&parts, &service, &targets, &cfg)
        .map_err(|e| CliError(format!("fuzz target system does not compile: {e}")))?;
    let elapsed = started.elapsed();
    let mut out = if p.has("--json") {
        let mut json = report.to_json();
        json.push('\n');
        json
    } else {
        format!("{report}\n")
    };
    if !p.has("--json") {
        // Throughput goes to the human report only — the JSON stays
        // deterministic for CI pinning.
        let total: u64 = report.executed.iter().map(|(_, n)| n).sum();
        out.push_str(&format!(
            "{total} cases in {:.2}s ({:.0} cases/s)\n",
            elapsed.as_secs_f64(),
            total as f64 / elapsed.as_secs_f64().max(1e-9),
        ));
    }
    if !report.is_clean() {
        return err(format!(
            "fuzz found {} failing case(s):\n{report}",
            report.findings.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    const SOURCE: &str = "
        spec S { initial u0; u0: acc -> u1; u1: del -> u0; }
        spec B {
          initial b0;
          b0: acc -> b1;
          b1: fwd -> b2;
          b2: del -> b0;
        }
        spec Broken { initial x0; x0: acc -> x1; x1: del -> x2; x2: del -> x0; }
        problem relay {
          components B;
          service S;
          internal fwd;
        }
    ";

    fn with_file<F: FnOnce(&str) -> R, R>(f: F) -> R {
        let mut path = std::env::temp_dir();
        path.push(format!("protoquot-cli-test-{}.pq", std::process::id()));
        let mut file = std::fs::File::create(&path).unwrap();
        file.write_all(SOURCE.as_bytes()).unwrap();
        let r = f(path.to_str().unwrap());
        let _ = std::fs::remove_file(&path);
        r
    }

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args).unwrap()
    }

    #[test]
    fn parse_lists_specs() {
        with_file(|path| {
            let out = run_ok(&["parse", path]);
            assert!(out.contains("S: 2 states"));
            assert!(out.contains("B: 3 states"));
            assert!(out.contains("Broken: 3 states"));
        })
    }

    #[test]
    fn show_prints_text_and_dot() {
        with_file(|path| {
            let text = run_ok(&["show", path, "S"]);
            assert!(text.contains("u0: acc -> u1"));
            let dot = run_ok(&["show", path, "S", "--dot"]);
            assert!(dot.contains("digraph"));
        })
    }

    #[test]
    fn show_unknown_spec_errors() {
        with_file(|path| {
            let args: Vec<String> = ["show", path, "Nope"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let e = run(&args).unwrap_err();
            assert!(e.to_string().contains("available: S, B, Broken"));
        })
    }

    #[test]
    fn check_reports_both_verdicts() {
        with_file(|path| {
            let bad = run_ok(&["check", path, "--impl", "Broken", "--service", "S"]);
            assert!(bad.starts_with("FAIL"), "{bad}");
            // B alone doesn't have the same interface; compose story is
            // covered by solve. Check S against itself instead.
            let ok = run_ok(&["check", path, "--impl", "S", "--service", "S"]);
            assert!(ok.starts_with("OK"), "{ok}");
        })
    }

    #[test]
    fn solve_derives_converter() {
        with_file(|path| {
            let out = run_ok(&["solve", path, "--service", "S", "--int", "fwd", "--b", "B"]);
            assert!(out.contains("converter derived"), "{out}");
            assert!(out.contains("fwd"), "{out}");
        })
    }

    #[test]
    fn solve_threads_and_stats_flags() {
        with_file(|path| {
            let one = run_ok(&["solve", path, "--problem", "relay", "--stats"]);
            assert!(one.contains("safety engine:"), "{one}");
            assert!(one.contains("verify engine:"), "{one}");
            assert!(one.contains("; verified"), "{one}");
            assert!(one.contains("1 threads"), "{one}");
            let four = run_ok(&[
                "solve",
                path,
                "--problem",
                "relay",
                "--stats",
                "--threads",
                "4",
            ]);
            assert!(four.contains("4 threads"), "{four}");
            // The derived converter is identical at any thread count.
            let strip = |s: &str| {
                s.lines()
                    .filter(|l| {
                        !l.starts_with("safety engine:") && !l.starts_with("verify engine:")
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(strip(&one), strip(&four));
            let args: Vec<String> = ["solve", path, "--problem", "relay", "--threads", "x"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert!(run(&args).is_err());
        })
    }

    #[test]
    fn solve_emits_json() {
        with_file(|path| {
            let out = run_ok(&["solve", path, "--problem", "relay", "--json"]);
            assert!(out.contains("\"external\""), "{out}");
            assert!(out.contains("\"fwd\""), "{out}");
        })
    }

    #[test]
    fn solve_by_declared_problem() {
        with_file(|path| {
            let out = run_ok(&["solve", path, "--problem", "relay"]);
            assert!(out.contains("converter derived"), "{out}");
            let args: Vec<String> = ["solve", path, "--problem", "nope"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let e = run(&args).unwrap_err();
            assert!(e.to_string().contains("available: relay"), "{e}");
            // Mixing --problem with --service is rejected.
            let args: Vec<String> = ["solve", path, "--problem", "relay", "--service", "S"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert!(run(&args).is_err());
        })
    }

    #[test]
    fn solve_reports_nonexistence_with_witness() {
        with_file(|path| {
            // Against Broken (which duplicates), no converter over {fwd}
            // can exist — fwd isn't even in its alphabet, so the problem
            // is malformed; use B with an empty Int instead: B alone
            // cannot progress past b1.
            let out = run_ok(&[
                "solve",
                path,
                "--service",
                "S",
                "--int",
                "fwd,unused_evt",
                "--b",
                "B",
            ]);
            // unused_evt not in B's alphabet -> BadProblem, reported.
            assert!(
                out.contains("no converter") || out.contains("malformed"),
                "{out}"
            );
        })
    }

    #[test]
    fn simulate_runs_clean() {
        with_file(|path| {
            // Close the loop: B needs a converter for fwd; simulate the
            // service spec S as a self-system instead (trivially clean).
            let out = run_ok(&[
                "simulate",
                path,
                "--service",
                "S",
                "--components",
                "S",
                "--steps",
                "100",
            ]);
            assert!(out.contains("ran 100 steps"), "{out}");
            assert!(out.contains("conforming"), "{out}");
        })
    }

    #[test]
    fn simulate_detects_violation() {
        with_file(|path| {
            let out = run_ok(&[
                "simulate",
                path,
                "--service",
                "S",
                "--components",
                "Broken",
                "--steps",
                "50",
                "--seed",
                "3",
            ]);
            assert!(out.contains("VIOLATION"), "{out}");
        })
    }

    #[test]
    fn compose_hides_shared_events() {
        with_file(|path| {
            let out = run_ok(&["compose", path, "B", "S", "--name", "closed"]);
            // B and S share acc/del -> hidden; fwd remains.
            assert!(out.contains("alphabet: {fwd}"), "{out}");
        })
    }

    #[test]
    fn minimize_and_normalize_commands() {
        with_file(|path| {
            let m = run_ok(&["minimize", path, "S"]);
            assert!(m.contains("2 -> 2 states"), "{m}");
            let n = run_ok(&["normalize", path, "S"]);
            assert!(n.contains("already in normal form"), "{n}");
            assert!(n.contains("2 hubs"), "{n}");
        })
    }

    #[test]
    fn violations_command_lists_escapes() {
        with_file(|path| {
            let out = run_ok(&["violations", path, "--impl", "Broken", "--service", "S"]);
            assert!(out.contains("minimal violation"), "{out}");
            assert!(out.contains("acc.del.del"), "{out}");
            let ok = run_ok(&["violations", path, "--impl", "S", "--service", "S"]);
            assert!(ok.contains("no violations"), "{ok}");
        })
    }

    #[test]
    fn explore_command_exhaustive() {
        with_file(|path| {
            let clean = run_ok(&["explore", path, "--service", "S", "--components", "S"]);
            assert!(clean.contains("no safety violation reachable"), "{clean}");
            assert!(clean.contains("no deadlock reachable"), "{clean}");
            let dirty = run_ok(&["explore", path, "--service", "S", "--components", "Broken"]);
            assert!(dirty.contains("VIOLATION"), "{dirty}");
        })
    }

    #[test]
    fn soak_runs_clean_on_file_system() {
        with_file(|path| {
            let out = run_ok(&[
                "soak",
                path,
                "--service",
                "S",
                "--components",
                "S",
                "--runs",
                "20",
                "--steps",
                "100",
            ]);
            assert!(out.contains("20 conforming"), "{out}");
            assert!(out.contains("overall: Conforming"), "{out}");
        })
    }

    #[test]
    fn soak_catches_broken_machine_with_counterexample() {
        with_file(|path| {
            let out = run_ok(&[
                "soak",
                path,
                "--service",
                "S",
                "--components",
                "Broken",
                "--runs",
                "10",
                "--steps",
                "100",
            ]);
            assert!(out.contains("NON-CONFORMING"), "{out}");
            assert!(out.contains("counterexample"), "{out}");
        })
    }

    #[test]
    fn soak_json_output() {
        with_file(|path| {
            let out = run_ok(&[
                "soak",
                path,
                "--service",
                "S",
                "--components",
                "S",
                "--runs",
                "5",
                "--steps",
                "50",
                "--json",
            ]);
            assert!(out.contains("\"verdict\":\"Conforming\""), "{out}");
            assert!(out.contains("\"runs\":5"), "{out}");
        })
    }

    #[test]
    fn soak_builtin_colocated_with_faults() {
        let out = run_ok(&[
            "soak",
            "--builtin",
            "colocated",
            "--runs",
            "10",
            "--steps",
            "300",
            "--faults",
            "loss,dup,reorder",
        ]);
        assert!(out.contains("static verdict: Conforming"), "{out}");
        assert!(out.contains("overall: Conforming"), "{out}");
        assert!(out.contains("faults=loss,dup,reorder"), "{out}");
    }

    #[test]
    fn soak_builtin_mutated_converter_is_caught() {
        // Scan mutation indices until one yields a converter the soak
        // flags (some redirects are behaviour-preserving).
        for k in 0..12 {
            let args: Vec<String> = [
                "soak",
                "--builtin",
                "colocated",
                "--mutate",
                &k.to_string(),
                "--runs",
                "30",
                "--steps",
                "400",
                "--faults",
                "loss,dup,reorder",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            let out = run(&args).unwrap();
            if out.contains("NON-CONFORMING") {
                return;
            }
        }
        panic!("no mutation index was caught by the soak fleet");
    }

    #[test]
    fn soak_rejects_bad_flags() {
        let args: Vec<String> = ["soak", "--builtin", "nope"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args)
            .unwrap_err()
            .to_string()
            .contains("unknown builtin"));
        let args: Vec<String> = ["soak", "--builtin", "colocated", "--faults", "cosmic"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args)
            .unwrap_err()
            .to_string()
            .contains("unknown fault"));
    }

    #[test]
    fn solve_emits_compiled_csr_json() {
        with_file(|path| {
            let out = run_ok(&["solve", path, "--problem", "relay", "--emit", "compiled"]);
            let json = out.lines().last().unwrap();
            assert!(json.contains("\"event_table\":[\"acc\",\"del\"]"), "{json}");
            assert!(json.contains("\"tau_star\""), "{json}");
            assert!(json.contains("\"external\""), "{json}");
            assert!(json.contains("\"initial\":0"), "{json}");
            let args: Vec<String> = ["solve", path, "--problem", "relay", "--emit", "nope"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert!(run(&args)
                .unwrap_err()
                .to_string()
                .contains("unknown format"));
        })
    }

    #[test]
    fn solve_stats_reports_event_table_hash() {
        with_file(|path| {
            let out = run_ok(&["solve", path, "--problem", "relay", "--stats"]);
            assert!(out.contains("event table: 2 events, hash "), "{out}");
        })
    }

    #[test]
    fn solve_emit_compiled_out_writes_a_loadable_artifact() {
        with_file(|path| {
            let mut artifact_path = std::env::temp_dir();
            artifact_path.push(format!(
                "protoquot-cli-artifact-{}.pqca",
                std::process::id()
            ));
            let artifact_path = artifact_path.to_str().unwrap().to_string();
            let out = run_ok(&[
                "solve",
                path,
                "--problem",
                "relay",
                "--emit",
                "compiled",
                "--out",
                &artifact_path,
            ]);
            // The JSON stdout is unchanged; the receipt line follows it.
            assert!(out.contains("\"tau_star\""), "{out}");
            assert!(out.contains(&format!("wrote {artifact_path}:")), "{out}");
            // The file decodes, re-verifies, and carries the same wire
            // identity the stats line reports.
            let bytes = std::fs::read(&artifact_path).unwrap();
            let artifact = CompiledArtifact::decode(&bytes).expect("emitted artifact decodes");
            let (_, service, prog) = artifact.instantiate().expect("emitted artifact rebuilds");
            assert_eq!(service.name(), "S");
            assert_eq!(
                table_hash(&EventTable::new(service.alphabet())),
                artifact.table_hash
            );
            drop(prog);
            let _ = std::fs::remove_file(&artifact_path);
            // --out without --emit compiled is rejected.
            let args: Vec<String> = ["solve", path, "--problem", "relay", "--out", "/tmp/x"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            assert!(run(&args)
                .unwrap_err()
                .to_string()
                .contains("--out needs --emit compiled"));
        })
    }

    /// The control surface end to end: an emitted artifact admitted
    /// over the control socket swaps the gateway; a mutant artifact is
    /// refused at admission with the old version still serving.
    #[test]
    fn reload_control_socket_swaps_and_refuses() {
        let (components, service) = builtin_soak_system("colocated", None).unwrap();
        let parts: Vec<&Spec> = components.iter().collect();
        let gw = Gateway::new(&parts, &service, GatewayConfig::default()).unwrap();
        let mut dir = std::env::temp_dir();
        dir.push(format!("protoquot-cli-registry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = ConverterRegistry::open(&dir, &service, gw.active_version()).unwrap();
        let control = ControlServer::bind("127.0.0.1:0", registry, gw.clone()).unwrap();
        let addr = control.local_addr().to_string();

        // A verified v2 artifact (same system, freshly encoded).
        let bytes = protoquot_runtime::artifact::encode(&parts, &service).unwrap();
        let good = dir.join("v2.pqca");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&good, &bytes).unwrap();
        let out = run_ok(&[
            "reload",
            "--control",
            &addr,
            "--artifact",
            good.to_str().unwrap(),
        ]);
        assert!(out.starts_with("ok version 2 "), "{out}");
        assert_eq!(gw.active_version(), 2);

        // A mutant artifact (internally consistent, fails re-verify).
        let mutant = (0..16)
            .find_map(|k| {
                let m = redirect_transition(&components[1], k)?;
                let mutated = [&components[0], &m];
                let bytes = protoquot_runtime::artifact::encode(&mutated, &service).ok()?;
                CompiledArtifact::decode(&bytes).ok()?.instantiate().ok()?;
                Some(bytes)
            })
            .expect("some mutant encodes");
        let bad = dir.join("mutant.pqca");
        std::fs::write(&bad, &mutant).unwrap();
        let args: Vec<String> = ["reload", "--control", &addr, "--artifact"]
            .iter()
            .map(|s| s.to_string())
            .chain([bad.to_str().unwrap().to_string()])
            .collect();
        let e = run(&args).unwrap_err().to_string();
        assert!(e.contains("reload refused"), "{e}");
        // The refusal left version 2 serving.
        assert_eq!(gw.active_version(), 2);

        // Garbage is a clean error too.
        let junk = dir.join("junk.pqca");
        std::fs::write(&junk, b"not an artifact").unwrap();
        let args: Vec<String> = ["reload", "--control", &addr, "--artifact"]
            .iter()
            .map(|s| s.to_string())
            .chain([junk.to_str().unwrap().to_string()])
            .collect();
        assert!(run(&args)
            .unwrap_err()
            .to_string()
            .contains("reload refused"));
        assert_eq!(gw.active_version(), 2);

        control.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drive_loopback_clean_on_correct_converter() {
        let out = run_ok(&[
            "drive",
            "--builtin",
            "colocated",
            "--loopback",
            "--runs",
            "10",
            "--steps",
            "200",
            "--expect-clean",
        ]);
        assert!(out.contains("runs 10"), "{out}");
        assert!(out.contains("convicted 0"), "{out}");
    }

    #[test]
    fn drive_loopback_convicts_a_mutated_converter() {
        // Mirrors the soak sweep: at least one single-transition mutant
        // must be convicted by the online guard over the wire.
        for k in 0..4 {
            let mutate = k.to_string();
            let out = run_ok(&[
                "drive",
                "--builtin",
                "colocated",
                "--mutate",
                &mutate,
                "--loopback",
                "--runs",
                "20",
                "--steps",
                "300",
                "--faults",
                "loss,reorder",
                "--json",
            ]);
            if !out.contains("\"convicted_runs\":0") {
                assert!(out.contains("\"convicted_runs\":"), "{out}");
                return;
            }
        }
        panic!("no mutation index was convicted by the driven gateway");
    }

    #[test]
    fn drive_pipeline_and_batching_flags_do_not_change_the_report() {
        // One clean multiplexed campaign, then the same seed with the
        // batched dispatch disabled and with a pipeline window: the
        // reports must be byte-identical (the flags change the hot
        // path, never the outcome).
        let base = &[
            "drive",
            "--builtin",
            "colocated",
            "--loopback",
            "--runs",
            "8",
            "--steps",
            "200",
            "--sessions-per-conn",
            "4",
            "--expect-clean",
            "--json",
        ];
        let batched = run_ok(base);
        let mut no_batch = base.to_vec();
        no_batch.push("--no-batch");
        assert_eq!(batched, run_ok(&no_batch), "--no-batch changed the report");
        let mut piped = base.to_vec();
        piped.extend(["--pipeline", "8"]);
        assert_eq!(batched, run_ok(&piped), "--pipeline changed the report");
    }

    #[test]
    fn drive_pipeline_selects_mux_and_validates_depth() {
        // --pipeline alone selects the multiplexed campaign (no
        // --sessions-per-conn needed) and rejects absurd depths.
        let out = run_ok(&[
            "drive",
            "--builtin",
            "colocated",
            "--loopback",
            "--runs",
            "4",
            "--steps",
            "200",
            "--pipeline",
            "4",
            "--expect-clean",
        ]);
        assert!(out.contains("runs 4"), "{out}");
        let args: Vec<String> = [
            "drive",
            "--builtin",
            "colocated",
            "--loopback",
            "--pipeline",
            "0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let e = run(&args).unwrap_err();
        assert!(e.to_string().contains("--pipeline must be"), "{e}");
    }

    #[test]
    fn drive_requires_a_transport() {
        let args: Vec<String> = ["drive", "--builtin", "colocated"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args)
            .unwrap_err()
            .to_string()
            .contains("--connect HOST:PORT or --loopback"));
    }

    #[test]
    fn serve_smoke_reports_stats() {
        // Zero duration: start, drain, report. No transport needed.
        let out = run_ok(&[
            "serve",
            "--builtin",
            "colocated",
            "--duration",
            "0",
            "--stats",
        ]);
        assert!(out.contains("sessions active=0"), "{out}");
        assert!(out.contains("\"events_per_sec\""), "{out}");
        // The determinized guard's build figures ride along in both
        // the human and JSON stats renderings.
        assert!(out.contains("guard dfa"), "{out}");
        assert!(out.contains("\"guard_build\""), "{out}");
    }

    #[test]
    fn serve_and_drive_over_tcp() {
        // End-to-end: a served gateway on an OS-assigned port, driven
        // over real sockets by the fleet replayer.
        let (components, service) = builtin_soak_system("colocated", None).unwrap();
        let parts: Vec<&Spec> = components.iter().collect();
        let gw = Gateway::new(&parts, &service, GatewayConfig::default()).unwrap();
        let mut server = TcpServer::bind(gw.clone(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        let out = run_ok(&[
            "drive",
            "--builtin",
            "colocated",
            "--connect",
            &addr,
            "--runs",
            "5",
            "--steps",
            "200",
            "--threads",
            "2",
            "--expect-clean",
        ]);
        assert!(out.contains("runs 5"), "{out}");
        server.stop();
        gw.drain();
        let snap = gw.stats();
        assert!(snap.accepted > 0, "no frames reached the served gateway");
        assert_eq!(snap.convictions, 0);
    }

    #[test]
    fn serve_reactor_and_drive_multiplexed_over_tcp() {
        // End-to-end over the readiness transport: a reactor-served
        // gateway, driven by multiplexed sessions over one socket per
        // thread. The mux report must equal a lockstep campaign's.
        let (components, service) = builtin_soak_system("colocated", None).unwrap();
        let parts: Vec<&Spec> = components.iter().collect();
        let gw = Gateway::new(&parts, &service, GatewayConfig::default()).unwrap();
        let mut server =
            ReactorServer::bind(gw.clone(), "127.0.0.1:0", ReactorConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        let mux_out = run_ok(&[
            "drive",
            "--builtin",
            "colocated",
            "--connect",
            &addr,
            "--runs",
            "8",
            "--steps",
            "200",
            "--sessions-per-conn",
            "4",
            "--expect-clean",
            "--json",
        ]);
        // Closed sessions are tombstoned until idle eviction, so the
        // lockstep control campaign (same run indices = same session
        // ids) needs a fresh gateway.
        let gw2 = Gateway::new(&parts, &service, GatewayConfig::default()).unwrap();
        let mut server2 = TcpServer::bind(gw2.clone(), "127.0.0.1:0").unwrap();
        let addr2 = server2.local_addr().to_string();
        let lockstep_out = run_ok(&[
            "drive",
            "--builtin",
            "colocated",
            "--connect",
            &addr2,
            "--runs",
            "8",
            "--steps",
            "200",
            "--expect-clean",
            "--json",
        ]);
        assert_eq!(
            mux_out, lockstep_out,
            "multiplexed and lockstep campaigns diverged over the reactor"
        );
        server.stop();
        server2.stop();
        gw.drain();
        gw2.drain();
        let snap = gw.stats();
        assert!(snap.accepted > 0, "no frames reached the served gateway");
        assert_eq!(snap.convictions, 0);
        assert!(
            snap.connections_opened >= 1 && snap.connections_opened == snap.connections_closed,
            "connection accounting is off: {snap}"
        );
    }

    #[test]
    fn serve_rejects_unknown_transport() {
        let args: Vec<String> = ["serve", "--builtin", "colocated", "--transport", "carrier"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(run(&args)
            .unwrap_err()
            .to_string()
            .contains("--transport must be"));
    }

    #[test]
    fn usage_and_unknown_command() {
        let e = run(&["bogus".to_owned()]).unwrap_err();
        assert!(e.to_string().contains("unknown command"));
        let help = run(&["help".to_owned()]).unwrap();
        assert!(help.contains("usage:"));
        assert!(run(&[]).is_err());
    }

    #[test]
    fn flag_value_missing_is_error() {
        with_file(|path| {
            let args: Vec<String> = ["check", path, "--impl"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            let e = run(&args).unwrap_err();
            assert!(e.to_string().contains("needs a value"));
        })
    }

    #[test]
    fn loss_flag_validation() {
        with_file(|path| {
            let args: Vec<String> = [
                "simulate",
                path,
                "--service",
                "S",
                "--components",
                "S",
                "--loss",
                "Nope=3",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
            let e = run(&args).unwrap_err();
            assert!(e.to_string().contains("not in --components"));
        })
    }
}
