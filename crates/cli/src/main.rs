//! Thin shell around [`protoquot_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match protoquot_cli::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            // 2 = conviction verdict, 3 = operationally unclean under
            // --expect-clean, 1 = everything else.
            ExitCode::from(e.exit_code())
        }
    }
}
