//! Derive the paper's AB→NS converter, then *run* it: wire the actual
//! machines (AB sender, lossy channel, converter, NS receiver) into the
//! simulation engine, inject increasing loss rates, and watch the
//! exactly-once service hold under fire.
//!
//! Run with: `cargo run --example simulate_converter`

use protoquot_core::solve;
use protoquot_protocols::{
    ab_channel, ab_sender, colocated_configuration, exactly_once, ns_receiver,
};
use protoquot_sim::{render_msc, run_monitored, run_traced, MonitorVerdict, SimConfig};

fn main() {
    // Derive the converter for the co-located configuration (Fig. 13).
    let cfg = colocated_configuration();
    let service = exactly_once();
    let q = solve(&cfg.b, &service, &cfg.int).expect("converter exists");
    println!(
        "derived converter: {} states, {} transitions\n",
        q.converter.num_states(),
        q.converter.num_external()
    );

    // Show the first protocol round as a message-sequence chart.
    let (_, log) = run_traced(
        vec![
            ab_sender(),
            ab_channel(),
            q.converter.clone(),
            ns_receiver(),
        ],
        &service,
        &SimConfig {
            seed: 7,
            max_steps: 12,
            internal_weights: vec![(1, 0)], // lossless for the demo round
        },
        12,
    );
    println!("one clean protocol round through the converter:");
    println!("{}", render_msc(&["A0", "Ach", "C", "N1"], &log));

    // Components by index: 0 = AB sender, 1 = lossy channel,
    // 2 = converter, 3 = NS receiver. The channel's internal
    // transitions are its losses; weighting them scales the loss rate.
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "loss wt", "steps", "accepts", "delivers", "losses", "verdict"
    );
    for loss_weight in [0u32, 1, 5, 20] {
        let components = vec![
            ab_sender(),
            ab_channel(),
            q.converter.clone(),
            ns_receiver(),
        ];
        let config = SimConfig {
            seed: 7,
            max_steps: 50_000,
            internal_weights: vec![(1, loss_weight)],
        };
        let report = run_monitored(components, &service, &config);
        let verdict = match &report.verdict {
            MonitorVerdict::Conforming if !report.deadlocked => "ok",
            MonitorVerdict::Conforming => "DEADLOCK",
            MonitorVerdict::SafetyViolation { .. } => "VIOLATION",
        };
        println!(
            "{:>10} {:>8} {:>8} {:>8} {:>9} {:>8}",
            loss_weight,
            report.steps,
            report.count("acc"),
            report.count("del"),
            report.internal_counts[1],
            verdict
        );
        assert!(
            report.verdict == MonitorVerdict::Conforming && !report.deadlocked,
            "the verified converter must never misbehave in simulation"
        );
        // Exactly-once: accepts and delivers never differ by more than 1.
        let (acc, del) = (report.count("acc"), report.count("del"));
        assert!(acc >= del && acc - del <= 1, "acc={acc} del={del}");
    }
    println!(
        "\nacross all loss rates the monitored acc/del stream stayed a strict\n\
         alternation and the system never deadlocked — the static `satisfies`\n\
         verdict, observed dynamically."
    );
}
