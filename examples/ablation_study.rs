//! Ablation study over the solver's knobs, on the paper's co-located
//! problem and the bidirectional extension:
//!
//! * **vacuous states** (Theorem 1's literal maximality vs the useful
//!   subset): how much dead weight does literal maximality carry?
//! * **progress strategy** (paper-exact Figure 6 vs the
//!   reachable-product refinement): does skipping unrealisable pairs
//!   ever keep more behaviour here?
//! * **pruning** (the paper's "best done by hand", automated): how much
//!   superfluous behaviour does the maximal converter carry?
//!
//! Run with: `cargo run --release --example ablation_study`

use protoquot_core::{
    prune_useless, solve_with, verify_converter, ProgressStrategy, QuotientOptions,
};
use protoquot_protocols::{
    colocated_configuration, duplex_configuration, duplex_service, exactly_once,
};
use protoquot_spec::Spec;
use std::time::Instant;

fn row(
    label: &str,
    b: &Spec,
    service: &Spec,
    int: &protoquot_spec::Alphabet,
    opts: &QuotientOptions,
    prune: bool,
) {
    let t = Instant::now();
    match solve_with(b, service, int, opts) {
        Ok(q) => {
            let converter = if prune {
                prune_useless(b, service, &q.converter)
            } else {
                q.converter
            };
            verify_converter(b, service, &converter).expect("every variant must verify");
            println!(
                "{:<34} {:>8} {:>12} {:>12} {:>10.1}",
                label,
                converter.num_states(),
                converter.num_external(),
                q.stats.safety_states,
                t.elapsed().as_secs_f64() * 1e3
            );
        }
        Err(e) => println!("{label:<34} failed: {e}"),
    }
}

fn main() {
    println!(
        "{:<34} {:>8} {:>12} {:>12} {:>10}",
        "variant", "C states", "transitions", "C0 states", "ms"
    );

    let col = colocated_configuration();
    let service = exactly_once();
    let base = QuotientOptions::default();
    println!("-- paper Fig. 13 problem ------------------------------------------------------");
    row(
        "default (Fig. 6, lean)",
        &col.b,
        &service,
        &col.int,
        &base,
        false,
    );
    row(
        "with vacuous states (Thm 1 literal)",
        &col.b,
        &service,
        &col.int,
        &QuotientOptions {
            include_vacuous: true,
            ..base.clone()
        },
        false,
    );
    row(
        "reachable-product progress",
        &col.b,
        &service,
        &col.int,
        &QuotientOptions {
            strategy: ProgressStrategy::ReachableProduct,
            ..base.clone()
        },
        false,
    );
    row("default + pruning", &col.b, &service, &col.int, &base, true);

    let dup = duplex_configuration();
    let dup_service = duplex_service();
    println!("-- bidirectional extension ----------------------------------------------------");
    row("default", &dup.b, &dup_service, &dup.int, &base, false);
    row(
        "reachable-product progress",
        &dup.b,
        &dup_service,
        &dup.int,
        &QuotientOptions {
            strategy: ProgressStrategy::ReachableProduct,
            ..base.clone()
        },
        false,
    );

    println!(
        "\nEvery variant re-verified (B ‖ C ⊨ A). Takeaways: vacuous states add\n\
         dead weight only; the reachable-product refinement may retain more\n\
         behaviour than the paper's Figure 6 (both remain correct); pruning\n\
         trims what maximality over-approximates."
    );
}
