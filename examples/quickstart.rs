//! Quickstart: derive a protocol converter in ~40 lines.
//!
//! Two mismatched "protocols" — a producer that emits framed messages
//! and a consumer that expects unframed ones — must jointly provide a
//! simple alternating service. The quotient algorithm derives the
//! mediator automatically.
//!
//! Run with: `cargo run --example quickstart`

use protoquot_core::{solve, verify_converter};
use protoquot_spec::{compose, to_text, Alphabet, SpecBuilder};

fn main() {
    // The desired service: users see a strict accept/deliver alternation.
    let mut b = SpecBuilder::new("service");
    let u0 = b.state("u0");
    let u1 = b.state("u1");
    b.ext(u0, "acc", u1);
    b.ext(u1, "del", u0);
    let service = b.build().unwrap();

    // Fixed components (think: P0 composed with Q1). The producer
    // accepts a message and emits a header then a body; the consumer
    // needs a single `msg` nudge, delivers, and acknowledges. (The
    // acknowledgement is what makes a converter possible at all: without
    // it the converter could never learn that delivery happened before
    // letting the producer take the next message — try deleting `ack`
    // and the solver will prove non-existence.)
    let mut b = SpecBuilder::new("producer");
    let p0 = b.state("p0");
    let p1 = b.state("p1");
    let p2 = b.state("p2");
    b.ext(p0, "acc", p1);
    b.ext(p1, "hdr", p2);
    b.ext(p2, "body", p0);
    let producer = b.build().unwrap();

    let mut b = SpecBuilder::new("consumer");
    let c0 = b.state("c0");
    let c1 = b.state("c1");
    let c2 = b.state("c2");
    b.ext(c0, "msg", c1);
    b.ext(c1, "del", c2);
    b.ext(c2, "ack", c0);
    let consumer = b.build().unwrap();

    // B is their composition; the converter will drive hdr/body/msg.
    let fixed = compose(&producer, &consumer);
    let int = Alphabet::from_names(["hdr", "body", "msg", "ack"]);

    println!("deriving a converter for:\n{}", to_text(&fixed));
    match solve(&fixed, &service, &int) {
        Ok(q) => {
            println!(
                "converter found ({} states, {} transitions; safety phase explored {}):",
                q.converter.num_states(),
                q.converter.num_external(),
                q.stats.safety_states
            );
            println!("{}", to_text(&q.converter));
            verify_converter(&fixed, &service, &q.converter)
                .expect("independent verification must pass");
            println!("independently verified: B ‖ C satisfies the service.");
        }
        Err(e) => println!("no converter exists: {e}"),
    }
}
