//! Author the paper's machines in the textual specification language,
//! parse them, solve the quotient, and export the converter as Graphviz
//! DOT — the full authoring workflow without touching the builder API.
//!
//! Run with: `cargo run --example spec_language`

use protoquot_core::solve;
use protoquot_spec::{compose_all, to_dot, Alphabet};
use protoquot_speclang::{parse_file, print_spec};

/// The co-located configuration of the paper's §5, written by hand.
const SOURCE: &str = "
# Alternating-bit sender (paper Figure 7).
spec A0 {
  initial idle0;
  idle0: acc -> snd0;
  snd0:  -d0 -> wai0;
  wai0:  +a0 -> idle1 | t_A -> snd0 | +a1 -> wai0;
  idle1: acc -> snd1;
  snd1:  -d1 -> wai1;
  wai1:  +a1 -> idle0 | t_A -> snd1 | +a0 -> wai1;
}

# Lossy duplex channel (paper Figure 10): unlabeled arrows are losses.
spec Ach {
  initial empty;
  empty:   -d0 -> has_d0 | -d1 -> has_d1 | -a0 -> has_a0 | -a1 -> has_a1;
  has_d0:  +d0 -> empty | -> lost;
  has_d1:  +d1 -> empty | -> lost;
  has_a0:  +a0 -> empty | -> lost;
  has_a1:  +a1 -> empty | -> lost;
  lost:    t_A -> empty;
}

# Non-sequenced receiver (paper Figure 8).
spec N1 {
  initial m0;
  m0: +D -> m1;
  m1: del -> m2;
  m2: -A -> m0;
}

# The desired service (paper Figure 11).
spec S {
  initial u0;
  u0: acc -> u1;
  u1: del -> u0;
}
";

fn main() {
    let specs = parse_file(SOURCE).expect("the source parses");
    let [a0, ach, n1, service] = &specs[..] else {
        panic!("expected four specs");
    };
    println!(
        "parsed {} machines; round-trip of A0:\n{}",
        specs.len(),
        print_spec(a0)
    );

    let b = compose_all(&[a0, ach, n1])
        .expect("components share each event pairwise")
        .with_name("A0||Ach||N1");
    let int = Alphabet::from_names(["+d0", "+d1", "-a0", "-a1", "+D", "-A"]);
    println!(
        "composed B: {} states, interface {}",
        b.num_states(),
        b.alphabet()
    );

    let q = solve(&b, service, &int).expect("converter exists (paper Figure 14)");
    println!(
        "derived converter: {} states, {} transitions\n",
        q.converter.num_states(),
        q.converter.num_external()
    );
    println!(
        "Graphviz DOT (pipe into `dot -Tsvg`):\n{}",
        to_dot(&q.converter)
    );
}
