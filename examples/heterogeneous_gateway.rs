//! The §6 scenario: transport-level conversion between heterogeneous
//! layered networks, with the orderly-close property (paper Figures
//! 15–18).
//!
//! 1. A naive pass-through entity (Figure 16) relays messages and
//!    acknowledges locally — the user's close can outrun delivery, and
//!    the checker produces the exact `open.send.close` witness.
//! 2. The quotient derives a correct converter for the co-located
//!    configuration (Figure 18): it withholds the data acknowledgement
//!    until the remote transport has delivered.
//! 3. The symmetric configuration (Figure 17, lossy network services on
//!    both sides) is attempted too — timeouts on both legs make the
//!    problem harder, mirroring the paper's observation that
//!    co-location "may allow a more useful conversion service".
//!
//! Run with: `cargo run --example heterogeneous_gateway`

use protoquot_core::{solve, verify_converter};
use protoquot_protocols::frontman::{frontman_configuration, two_client_service};
use protoquot_protocols::gateway::{
    connection_service, gateway_configuration, naive_passthrough, symmetric_gateway,
};
use protoquot_spec::{compose, satisfies, to_text, trace_string, Violation};

fn main() {
    let service = connection_service();
    println!("desired composite transport service (orderly close):");
    println!("{}", to_text(&service));

    println!("== Figure 16: the naive pass-through =================================");
    let cfg = gateway_configuration();
    let naive = naive_passthrough();
    let composite = compose(&cfg.b, &naive);
    match satisfies(&composite, &service).unwrap() {
        Err(Violation::Safety { trace }) => println!(
            "naive pass-through VIOLATES the service: witness trace `{}`\n\
             (the converter acknowledged locally, so the user's close completed\n\
             before the data reached the remote user — the orderly-close failure\n\
             the paper warns about)\n",
            trace_string(&trace)
        ),
        other => panic!("expected the §6 failure, got {other:?}"),
    }

    println!("== Figure 18: derived converter, co-located ==========================");
    let q = solve(&cfg.b, &service, &cfg.int).expect("a correct gateway converter exists");
    verify_converter(&cfg.b, &service, &q.converter).expect("verification");
    println!(
        "derived converter: {} states, {} transitions — verified to preserve\n\
         end-to-end synchronization (no close before deliver).",
        q.converter.num_states(),
        q.converter.num_external()
    );
    let pruned = protoquot_core::prune_useless(&cfg.b, &service, &q.converter);
    println!("useful core:\n{}", to_text(&pruned));

    println!("== Figure 17: symmetric, lossy network services on both legs =========");
    let sym = symmetric_gateway();
    println!(
        "B = TA0||NSa||NSb||TB1: {} states; converter interface has {} events",
        sym.b.num_states(),
        sym.int.len()
    );
    match solve(&sym.b, &service, &sym.int) {
        Ok(q) => {
            verify_converter(&sym.b, &service, &q.converter).expect("verification");
            println!(
                "a converter exists even symmetrically ({} states): the transports'\n\
                 own handshakes give the converter enough knowledge here.",
                q.converter.num_states()
            );
        }
        Err(e) => println!(
            "no converter for the symmetric placement: {e}\n\
             — co-location with one endpoint (Figure 18) is the architecture to use."
        ),
    }

    println!("\n== §6 finale: the converter as a server front man =====================");
    let fm = frontman_configuration();
    let fm_service = two_client_service();
    let q = solve(&fm.b, &fm_service, &fm.int).expect("the front man exists");
    verify_converter(&fm.b, &fm_service, &q.converter).expect("verification");
    println!(
        "a {}-state front man lets the foreign client reach the server while\n\
         native clients keep talking to it directly (the native port is not\n\
         even in the converter's interface: {}).",
        q.converter.num_states(),
        q.converter.alphabet()
    );
}
