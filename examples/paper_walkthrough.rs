//! The full §5 example of Calvert & Lam (SIGCOMM '89), end to end:
//!
//! 1. build the AB protocol, the NS protocol, the lossy channels and
//!    the exactly-once service (Figures 7, 8, 10, 11);
//! 2. validate the formalization: the AB system satisfies the service,
//!    the NS system doesn't (but satisfies the at-least-once one);
//! 3. run the quotient on the symmetric configuration (Figure 9):
//!    safety succeeds (Figure 12) but no converter satisfies progress;
//! 4. run it on the co-located configuration (Figure 13): a converter
//!    exists (Figure 14), verifies, and prunes to its useful core;
//! 5. weaken the service: the symmetric configuration now has a
//!    converter, matching the §5 remark.
//!
//! Run with: `cargo run --example paper_walkthrough`

use protoquot_core::{prune_useless, solve, verify_converter, QuotientError};
use protoquot_protocols::{
    ab_system, at_least_once, colocated_configuration, exactly_once, ns_system,
    symmetric_configuration,
};
use protoquot_spec::{satisfies, satisfies_safety, to_text};

fn main() {
    let service = exactly_once();
    println!("== Step 1: the protocol machines =====================================");
    let ab = ab_system();
    let ns = ns_system();
    println!(
        "AB system (A0||Ach||A1): {} reachable states",
        ab.num_states()
    );
    println!(
        "NS system (N0||Nch||N1): {} reachable states",
        ns.num_states()
    );

    println!("\n== Step 2: validating the formalization ==============================");
    assert!(satisfies(&ab, &service).unwrap().is_ok());
    println!("AB system satisfies the exactly-once service ✓");
    let ns_verdict = satisfies(&ns, &service).unwrap();
    println!(
        "NS system violates it: {}",
        ns_verdict.expect_err("NS must violate exactly-once")
    );
    assert!(satisfies(&ns, &at_least_once()).unwrap().is_ok());
    println!("NS system satisfies the weaker at-least-once service ✓");

    println!("\n== Step 3: symmetric configuration (Figure 9) ========================");
    let sym = symmetric_configuration();
    println!(
        "B = A0||Ach||Nch||N1: {} states; Int = {}",
        sym.b.num_states(),
        sym.int
    );
    match solve(&sym.b, &service, &sym.int) {
        Err(QuotientError::NoProgressingConverter {
            safety_output,
            iterations,
            witness,
        }) => {
            println!(
                "safety phase produced a {}-state converter (cf. Figure 12);",
                safety_output.num_states()
            );
            let composite = protoquot_spec::compose(&sym.b, &safety_output);
            assert!(satisfies_safety(&composite, &service).unwrap().is_ok());
            println!("it is safe — every acc/del sequence is an alternation prefix —");
            println!(
                "but the progress phase emptied it after {iterations} iterations: \
                 if a message is lost between C and N1, C cannot tell whether it was \
                 data (must retransmit) or the acknowledgement (retransmission would \
                 deliver a duplicate). NO converter exists. ✗ (as the paper proves)"
            );
            if let Some(w) = witness {
                println!(
                    "first conflict: after converter trace `{}` the service needs one \
                     of {:?} fully offered, but the composite can only ever offer {}",
                    protoquot_spec::trace_string(&w.trace),
                    w.needed,
                    w.offered
                );
            }
        }
        other => panic!("unexpected outcome: {other:?}"),
    }

    println!("\n== Step 4: co-located configuration (Figure 13) ======================");
    let col = colocated_configuration();
    println!(
        "B = A0||Ach||N1: {} states; Int = {}",
        col.b.num_states(),
        col.int
    );
    let q = solve(&col.b, &service, &col.int).expect("Figure 14 converter exists");
    println!(
        "converter found: {} states, {} transitions (safety phase {} states, \
         progress removed {} over {} iterations)",
        q.converter.num_states(),
        q.converter.num_external(),
        q.stats.safety_states,
        q.stats.removed_states,
        q.stats.progress_iterations
    );
    verify_converter(&col.b, &service, &q.converter).expect("verification");
    println!("independently verified: B ‖ C satisfies the exactly-once service ✓");

    let pruned = prune_useless(&col.b, &service, &q.converter);
    println!(
        "\nafter pruning superfluous behaviour (the paper's dotted boxes), the\n\
         converter core is:\n{}",
        to_text(&pruned)
    );

    println!("== Step 5: weakening the service (§5 remark) =========================");
    let weak = at_least_once();
    let q2 = solve(&sym.b, &weak, &sym.int)
        .expect("the at-least-once service admits a converter for Figure 9");
    verify_converter(&sym.b, &weak, &q2.converter).expect("verification");
    println!(
        "allowing duplicate delivery, the symmetric configuration admits a \
         {}-state converter ✓",
        q2.converter.num_states()
    );
    println!("\nAll of §5 reproduced.");
}
