//! Offline stand-in for `serde_json`: prints and parses the serde
//! shim's [`Value`] tree as JSON. Output is compact (no whitespace),
//! keys in `Obj` order, strings escaped per RFC 8259.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

pub type Result<T> = std::result::Result<T, Error>;

/// Serializes any `Serialize` type to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number '{text}'")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"name":"x","list":[1,2,3],"pairs":[[0,"a",1]],"flag":true,"none":null}"#;
        let v: Value = from_str(src).unwrap();
        let printed = to_string(&v).unwrap();
        let v2: Value = from_str(&printed).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}".to_owned();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_parse() {
        let back: String = from_str(r#""😀""#).unwrap();
        assert_eq!(back, "\u{1F600}");
    }

    #[test]
    fn typed_roundtrip() {
        let t: Vec<(usize, String, usize)> = vec![(0, "acc".into(), 1), (1, "del".into(), 0)];
        let json = to_string(&t).unwrap();
        assert_eq!(json, r#"[[0,"acc",1],[1,"del",0]]"#);
        let back: Vec<(usize, String, usize)> = from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
