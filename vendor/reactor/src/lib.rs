//! Minimal readiness-based event loop over Linux `epoll`.
//!
//! This is the offline stand-in for the usual async-io foundation crates
//! (`mio`, `polling`): a [`Poll`] that watches raw file descriptors for
//! readability/writability, an [`Events`] buffer the kernel fills per wait,
//! and a [`Waker`] that lets any thread interrupt a blocked [`Poll::poll`].
//! The surface is exactly what the runtime's reactor transport needs —
//! level-triggered readiness, token-addressed registrations, and nothing
//! else (no timers, no async/await, no cross-platform selector).
//!
//! The only unsafe code in the workspace lives here: four raw `epoll`
//! syscall bindings declared against the platform libc that every Rust
//! binary already links. Each call site upholds the syscall contract
//! locally (valid fds owned by the caller, event buffers sized by their
//! `Vec` capacity) and every return code is checked and surfaced as
//! [`std::io::Error`].
//!
//! ```no_run
//! use reactor::{Events, Interest, Poll, Token};
//! use std::net::TcpListener;
//! use std::os::fd::AsRawFd;
//!
//! let listener = TcpListener::bind("127.0.0.1:0").unwrap();
//! listener.set_nonblocking(true).unwrap();
//! let poll = Poll::new().unwrap();
//! poll.register(listener.as_raw_fd(), Token(1), Interest::READABLE).unwrap();
//! let mut events = Events::with_capacity(64);
//! poll.poll(&mut events, Some(std::time::Duration::from_millis(10))).unwrap();
//! for ev in events.iter() {
//!     if ev.token() == Token(1) && ev.is_readable() {
//!         // accept…
//!     }
//! }
//! ```

#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

// Raw epoll bindings. `std` links libc into every binary already; these
// declarations only name four symbols it exports. x86-64 is the one ABI
// where `struct epoll_event` is packed (a historic kernel choice), hence
// the cfg_attr below.
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

#[repr(C)]
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const SOL_SOCKET: i32 = 1;
const SO_RCVBUF: i32 = 8;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Pins a socket's kernel receive buffer to `bytes` (the kernel doubles
/// the value for bookkeeping and enforces its floor). Setting the size
/// explicitly also switches off receive-buffer autotuning for the
/// socket, which is the property deterministic backpressure tests rely
/// on: a peer that never reads then absorbs a bounded amount instead of
/// letting the kernel grow its window indefinitely.
pub fn set_recv_buffer(fd: RawFd, bytes: i32) -> io::Result<()> {
    // SAFETY: `fd` is a caller-owned open socket; the option value is a
    // plain `i32` read by the kernel within `optlen` bytes.
    check(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_RCVBUF,
            (&bytes as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    })
    .map(|_| ())
}

/// Caller-chosen identifier attached to a registration and echoed back on
/// every readiness event for that file descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness conditions a registration watches for.
///
/// Combine with [`Interest::add`]: `Interest::READABLE.add(Interest::WRITABLE)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Watch for the fd becoming readable (includes peer hangup).
    pub const READABLE: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Watch for the fd becoming writable.
    pub const WRITABLE: Interest = Interest(EPOLLOUT);

    /// Union of two interests (mio's method name, kept for API parity).
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include readability?
    pub fn is_readable(self) -> bool {
        self.0 & EPOLLIN != 0
    }

    /// Does this interest include writability?
    pub fn is_writable(self) -> bool {
        self.0 & EPOLLOUT != 0
    }
}

/// One readiness notification: the registration's [`Token`] plus which
/// conditions fired.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    token: Token,
    flags: u32,
}

impl Event {
    /// The token supplied at registration time.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The fd has bytes to read, or the peer closed (read will see EOF).
    pub fn is_readable(&self) -> bool {
        self.flags & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }

    /// The fd can accept writes without blocking.
    pub fn is_writable(&self) -> bool {
        self.flags & EPOLLOUT != 0
    }

    /// The peer hung up or the fd is in an error state; the connection is
    /// finished even if a final read drains buffered bytes first.
    pub fn is_closed(&self) -> bool {
        self.flags & (EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0
    }
}

/// Buffer of readiness notifications filled by one [`Poll::poll`] call.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// Allocate room for up to `capacity` notifications per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterate the notifications from the most recent wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| Event {
            token: Token(raw.data as usize),
            flags: raw.events,
        })
    }

    /// Number of notifications from the most recent wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Did the most recent wait time out with nothing ready?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An epoll instance: register file descriptors, then block on [`Poll::poll`]
/// until one becomes ready or a [`Waker`] fires.
///
/// Registrations are level-triggered: a readable fd keeps reporting
/// readable until drained, so a handler may process as much or as little
/// as it likes per wakeup.
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Create a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        // SAFETY: epoll_create1 takes no pointers; the returned fd is owned
        // by this Poll and closed in Drop.
        let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.0,
            data: token.0 as u64,
        };
        // SAFETY: `ev` is a live stack value for the duration of the call;
        // the kernel copies it before returning. fd validity is the
        // caller's contract (a dead fd surfaces as EBADF, not UB).
        check(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Start watching `fd` for `interest`, tagging its events with `token`.
    pub fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the interest set (and token) of an already-registered fd.
    pub fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stop watching `fd`. The fd must still be open (kernels drop closed
    /// fds from the set automatically, but an explicit deregister of an
    /// open fd keeps token reuse honest).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // SAFETY: as in `ctl`; DEL ignores the event argument but old
        // kernels demand a non-null pointer.
        check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Block until at least one registered fd is ready, `timeout` elapses
    /// (`None` = forever), or a [`Waker`] registered on this poll fires.
    /// Fills `events`; spurious empty returns are possible and harmless.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let millis: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        events.len = 0;
        loop {
            // SAFETY: the buffer pointer/length come from a live Vec whose
            // capacity bounds maxevents; the kernel writes at most that many
            // entries and returns the count.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    millis,
                )
            };
            match check(n) {
                Ok(n) => {
                    events.len = n as usize;
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: epfd was returned by epoll_create1 and is closed exactly
        // once, here.
        unsafe {
            close(self.epfd);
        }
    }
}

/// Cross-thread wakeup for a blocked [`Poll::poll`].
///
/// Implemented as a non-blocking socketpair self-pipe: [`Waker::wake`]
/// writes a byte from any thread, the poll loop sees the read end become
/// readable under the waker's token and calls [`Waker::drain`]. Multiple
/// wakes before a drain coalesce (the pipe fills and further writes are
/// dropped — one pending wakeup is all a level-triggered loop needs).
pub struct Waker {
    reader: UnixStream,
    writer: UnixStream,
}

impl Waker {
    /// Create a waker and register its read end on `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let (reader, writer) = UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        poll.register(reader.as_raw_fd(), token, Interest::READABLE)?;
        Ok(Waker { reader, writer })
    }

    /// Make the owning poll loop's next (or current) wait return. Safe to
    /// call from any thread, any number of times; wakes coalesce.
    pub fn wake(&self) -> io::Result<()> {
        match (&self.writer).write(&[1]) {
            Ok(_) => Ok(()),
            // Pipe full: a wakeup is already pending, which is all we need.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Consume pending wakeups. Call when the waker's token shows readable,
    /// otherwise the level-triggered registration re-fires forever.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.reader).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::thread;
    use std::time::Instant;

    #[test]
    fn readable_after_peer_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poll = Poll::new().unwrap();
        poll.register(server.as_raw_fd(), Token(7), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing written yet: a short wait times out empty.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        client.write_all(b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let evs: Vec<Event> = events.iter().collect();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token(), Token(7));
        assert!(evs[0].is_readable());
        assert!(!evs[0].is_closed());
    }

    #[test]
    fn hangup_reports_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let poll = Poll::new().unwrap();
        poll.register(server.as_raw_fd(), Token(3), Interest::READABLE)
            .unwrap();
        drop(client);

        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let evs: Vec<Event> = events.iter().collect();
        assert_eq!(evs.len(), 1);
        assert!(evs[0].is_readable());
        assert!(evs[0].is_closed());
    }

    #[test]
    fn writable_interest_and_reregister() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let poll = Poll::new().unwrap();
        // A fresh socket with an empty send buffer is immediately writable.
        poll.register(
            server.as_raw_fd(),
            Token(1),
            Interest::READABLE.add(Interest::WRITABLE),
        )
        .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.is_writable()));

        // Drop write interest: no more writable reports.
        poll.reregister(server.as_raw_fd(), Token(1), Interest::READABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.iter().all(|e| !e.is_writable()));

        poll.deregister(server.as_raw_fd()).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn waker_interrupts_poll_from_other_thread() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll, Token(0)).unwrap());
        let w = waker.clone();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
        });

        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        poll.poll(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        let evs: Vec<Event> = events.iter().collect();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].token(), Token(0));
        waker.drain();

        // Drained: the level-triggered registration goes quiet.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        handle.join().unwrap();
    }

    #[test]
    fn wakes_coalesce() {
        let poll = Poll::new().unwrap();
        let waker = Waker::new(&poll, Token(9)).unwrap();
        for _ in 0..100_000 {
            waker.wake().unwrap();
        }
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        waker.drain();
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
    }
}
