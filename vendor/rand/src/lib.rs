//! Offline stand-in for the `rand` crate.
//!
//! The workspace only needs a *seed-deterministic* generator with
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer
//! ranges; bit-compatibility with upstream `rand` is not required (all
//! callers only assert determinism for a fixed seed). The core is a
//! SplitMix64 state update, which passes the statistical bar these
//! simulations need and is trivially reproducible.

use core::ops::Range;

/// Minimal mirror of `rand_core::RngCore` (the `u64` part only).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Multiply-shift reduction; the tiny modulo bias is
                // irrelevant for test-data generation.
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let x = rng.next_u64() as u128;
                (lo as i128 + ((x * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Minimal mirror of `rand::Rng`.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal mirror of `rand::SeedableRng` (the `seed_from_u64` entry
/// point only — none of the callers use byte-array seeds).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SampleUniform, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..100);
            assert!(y < 100);
            let z: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn covers_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
