//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses:
//! [`strategy::Strategy`] with `prop_map`/`prop_flat_map`/`boxed`,
//! integer range and tuple strategies, [`strategy::Just`],
//! [`strategy::Union`] (behind [`prop_oneof!`]), [`collection::vec`],
//! a tiny regex-subset string strategy (`".*"`, `"[a-z]{1,3}"`, …), and
//! the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from upstream, by design: generation is plain seeded
//! pseudo-randomness (deterministic per test function name), there is
//! no shrinking, and failures surface as ordinary panics with the
//! case's debug info. That keeps the harness dependency-free while
//! preserving the tests' meaning: N randomized cases per property.

pub mod test_runner {
    /// Mirror of `proptest::test_runner::Config`, exported from the
    /// prelude as `ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary tag (the test function name), so
        /// every property gets a distinct but reproducible stream.
        pub fn deterministic(tag: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in tag.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)`.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi, "cannot sample empty range");
            let span = (hi - lo) as u128;
            lo + ((self.next_u64() as u128 * span) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Mirror of `proptest::strategy::Strategy`: a recipe for
    /// generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value. (Upstream proptest builds a shrinkable
        /// `ValueTree` here; this shim draws the value directly.)
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.gen_value(rng)).gen_value(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            self.0.gen_value(rng)
        }
    }

    /// Uniform choice between alternatives (the engine behind
    /// `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(0, self.options.len() as u64) as usize;
            self.options[idx].gen_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.below(self.start as u64, self.end as u64) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    rng.below(*self.start() as u64, *self.end() as u64 + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// A `&'static str` acts as a regex-subset string strategy, like
    /// upstream proptest's regex string strategies. Supported syntax:
    /// literal chars, `.`, `[a-z…]` classes, and the quantifiers `*`,
    /// `+`, `{m}`, `{m,n}` (unbounded `*`/`+` cap at 8 repetitions).
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            crate::string::gen_from_pattern(self, rng)
        }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        /// Inclusive char ranges; a singleton char is `(c, c)`.
        Class(Vec<(char, char)>),
        /// `.` — "any" char, drawn from a pool that stresses lexers:
        /// ASCII printables plus quotes, braces, newline, and a couple
        /// of multi-byte scalars.
        Dot,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// Cap for unbounded quantifiers (`*`, `+`).
    const UNBOUNDED_CAP: usize = 8;

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Dot
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = chars[i];
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            ranges.push((lo, chars[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in pattern {pattern:?}"
                    );
                    i += 1; // consume ']'
                    Atom::Class(ranges)
                }
                '\\' => {
                    assert!(
                        i + 1 < chars.len(),
                        "dangling escape in pattern {pattern:?}"
                    );
                    i += 2;
                    Atom::Literal(chars[i - 1])
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '*' => {
                        i += 1;
                        (0, UNBOUNDED_CAP)
                    }
                    '+' => {
                        i += 1;
                        (1, UNBOUNDED_CAP)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    '{' => {
                        let close = chars[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .map(|p| p + i)
                            .unwrap_or_else(|| {
                                panic!("unterminated quantifier in pattern {pattern:?}")
                            });
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((m, n)) => {
                                let m: usize = m.trim().parse().expect("bad quantifier");
                                let n: usize = if n.trim().is_empty() {
                                    m + UNBOUNDED_CAP
                                } else {
                                    n.trim().parse().expect("bad quantifier")
                                };
                                (m, n)
                            }
                            None => {
                                let m: usize = body.trim().parse().expect("bad quantifier");
                                (m, m)
                            }
                        }
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    const DOT_POOL: &[char] = &[
        'a',
        'b',
        'z',
        'A',
        'Z',
        '0',
        '9',
        ' ',
        '\t',
        '\n',
        '"',
        '\'',
        '{',
        '}',
        ';',
        ',',
        ':',
        '|',
        '-',
        '>',
        '_',
        '#',
        '\\',
        '/',
        '(',
        ')',
        '*',
        '=',
        'é',
        '→',
        '\u{1F600}',
    ];

    fn gen_atom(atom: &Atom, rng: &mut TestRng, out: &mut String) {
        match atom {
            Atom::Literal(c) => out.push(*c),
            Atom::Dot => {
                let idx = rng.below(0, DOT_POOL.len() as u64) as usize;
                out.push(DOT_POOL[idx]);
            }
            Atom::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
                    .sum();
                let mut pick = rng.below(0, total.max(1));
                for &(lo, hi) in ranges {
                    let span = (hi as u64) - (lo as u64) + 1;
                    if pick < span {
                        out.push(char::from_u32(lo as u32 + pick as u32).unwrap_or(lo));
                        return;
                    }
                    pick -= span;
                }
            }
        }
    }

    pub fn gen_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = parse(pattern);
        let mut out = String::new();
        for piece in &pieces {
            let count = if piece.min == piece.max {
                piece.min
            } else {
                rng.below(piece.min as u64, piece.max as u64 + 1) as usize
            };
            for _ in 0..count {
                gen_atom(&piece.atom, rng, &mut out);
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`: a vector whose length is
    /// drawn from `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Mirror of `proptest::proptest!`: expands each property into a
/// `#[test]` fn that draws `config.cases` random inputs and runs the
/// body on each. On panic the offending case is reported via the
/// ordinary assertion message (no shrinking in this shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::gen_value(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// `prop_assert!` — plain `assert!` in this shim (failures panic the
/// case instead of returning a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Mirror of `proptest::prop_oneof!`: uniform choice between arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::deterministic("ranges");
        let s = (0usize..5, 1u32..=3);
        for _ in 0..200 {
            let (a, b) = s.gen_value(&mut rng);
            assert!(a < 5);
            assert!((1..=3).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map() {
        let mut rng = TestRng::deterministic("maps");
        let s = (1usize..4).prop_flat_map(|n| (0..n, Just(n)).prop_map(|(i, n)| (i, n)));
        for _ in 0..200 {
            let (i, n) = s.gen_value(&mut rng);
            assert!(i < n);
        }
    }

    #[test]
    fn regex_subset() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..200 {
            let w = crate::strategy::Strategy::gen_value(&"[a-z]{1,3}", &mut rng);
            assert!((1..=3).contains(&w.chars().count()));
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            let any = crate::strategy::Strategy::gen_value(&".*", &mut rng);
            assert!(any.chars().count() <= 8);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::deterministic("oneof");
        let s = prop_oneof![Just(0u32), Just(1u32), Just(2u32)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.gen_value(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn collection_vec_lengths() {
        let mut rng = TestRng::deterministic("vec");
        let s = crate::collection::vec(0usize..10, 2..5);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0usize..10, (a, b) in (0u32..4, 0u32..4)) {
            prop_assert!(x < 10);
            prop_assert!(a < 4 && b < 4);
            prop_assert_eq!(x, x);
        }
    }
}
