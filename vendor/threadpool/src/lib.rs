//! Offline stand-in for the `threadpool` crate.
//!
//! The workspace only needs a fixed-size pool of long-lived workers
//! with `ThreadPool::new`, `execute` and `join` (wait until every
//! queued job has finished); the upstream crate's builder, panic
//! counters and dynamic resizing are not used. Workers are spawned
//! eagerly and shut down when the pool is dropped, so a pool can be
//! reused across several `execute`/`join` rounds, like upstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    /// Jobs currently running on a worker.
    active: usize,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signals workers that a job (or shutdown) is available.
    job_ready: Condvar,
    /// Signals `join` that the pool may have drained.
    drained: Condvar,
}

/// A fixed-size pool of worker threads executing queued jobs.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `num_threads` workers (at least one).
    pub fn new(num_threads: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                active: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            drained: Condvar::new(),
        });
        let workers = (0..num_threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Queues a job for execution on some worker.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        let mut q = self.shared.queue.lock().unwrap();
        q.jobs.push_back(Box::new(job));
        drop(q);
        self.shared.job_ready.notify_one();
    }

    /// Blocks until the queue is empty and no job is running.
    pub fn join(&self) {
        let mut q = self.shared.queue.lock().unwrap();
        while !q.jobs.is_empty() || q.active > 0 {
            q = self.shared.drained.wait(q).unwrap();
        }
    }

    /// Number of worker threads in the pool.
    pub fn max_count(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    q.active += 1;
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.job_ready.wait(q).unwrap();
            }
        };
        job();
        let mut q = shared.queue.lock().unwrap();
        q.active -= 1;
        if q.jobs.is_empty() && q.active == 0 {
            shared.drained.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs_before_join_returns() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn pool_is_reusable_after_join() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for round in 1..=3 {
            for _ in 0..10 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            pool.join();
            assert_eq!(counter.load(Ordering::SeqCst), 10 * round);
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.max_count(), 1);
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn join_on_idle_pool_returns_immediately() {
        let pool = ThreadPool::new(3);
        pool.join();
    }
}
