//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a plain wall-clock timing loop: warm up once, then run
//! `sample_size` timed samples and report min/median/mean per
//! iteration (plus throughput when configured). No statistics beyond
//! that, no HTML reports, no comparison baselines.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Mirror of `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Mirror of `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Mirror of `criterion::Bencher`: collects one timed sample per
/// `iter` batch.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches/allocator) and batch sizing: aim
        // for samples long enough for the clock to resolve.
        let warm_start = Instant::now();
        black_box(routine());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / u32::try_from(per_sample).unwrap_or(u32::MAX));
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let mean = b.samples.iter().sum::<Duration>() / u32::try_from(b.samples.len()).unwrap();
    let mut line = format!(
        "{label:<50} min {:>12}  median {:>12}  mean {:>12}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            line.push_str(&format!("  {:>12.0} {unit}", count as f64 / secs));
        }
    }
    println!("{line}");
}

/// Mirror of `criterion::BenchmarkGroup` (generic measurement type
/// omitted — wall clock only).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Mirror of `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.sample_size, None, &mut f);
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut ran = 0u32;
        g.bench_function("trivial", |b| {
            b.iter(|| {
                ran += 1;
                black_box(2u64 + 2)
            })
        });
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("with-input", 3), &3u32, |b, &i| {
            b.iter(|| black_box(i * 2))
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
