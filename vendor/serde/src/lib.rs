//! Offline stand-in for `serde`.
//!
//! Instead of upstream serde's visitor-based data model, this shim
//! routes everything through a small owned [`Value`] tree:
//! `Serialize` renders a type *to* a `Value`, `Deserialize` rebuilds it
//! *from* one. The companion `serde_json` shim then prints/parses
//! `Value` as JSON. That is all the workspace needs — the only wire
//! format in use is JSON, and all impls are written by hand (the
//! `derive` feature exists purely so dependents' feature lists keep
//! resolving; it expands to nothing).

use std::collections::BTreeMap;
use std::fmt;

/// The shim's data model: a JSON-shaped owned tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All integers are carried as `i128` so every native width fits.
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object with stable (insertion-independent) key order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i128> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error(pub String);

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Mirror of `serde::de` far enough for `de::Error::custom` call sites.
pub mod de {
    pub use super::Error;
}

/// Mirror of `serde::ser` for symmetry.
pub mod ser {
    pub use super::Error;
}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Impls for the primitives and containers the workspace serializes.
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_int()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(i).map_err(|_| {
                    Error::custom(format!("integer {i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(Error::custom(format!("expected number, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($len:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_arr()
                    .ok_or_else(|| Error::custom(format!("expected tuple array, got {v:?}")))?;
                if a.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} elements",
                        $len,
                        a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_and_range_check() {
        let v = 42usize.to_value();
        assert_eq!(usize::from_value(&v).unwrap(), 42);
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (1usize, "x".to_owned(), 2usize);
        let v = t.to_value();
        assert_eq!(<(usize, String, usize)>::from_value(&v).unwrap(), t);
    }

    #[test]
    fn vec_of_tuples() {
        let t: Vec<(usize, usize)> = vec![(0, 1), (2, 3)];
        let v = t.to_value();
        assert_eq!(<Vec<(usize, usize)>>::from_value(&v).unwrap(), t);
    }
}
