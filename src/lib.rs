//! # protoquot
//!
//! Umbrella crate for the Calvert & Lam SIGCOMM '89 reproduction:
//! re-exports the specification formalism, the quotient algorithm, the
//! protocol zoo, the prior-work baselines, the simulation engine and
//! the textual spec language. See the individual crates for details.

#![forbid(unsafe_code)]

pub use protoquot_baselines as baselines;
pub use protoquot_core as core;
pub use protoquot_protocols as protocols;
pub use protoquot_sim as sim;
pub use protoquot_spec as spec;
pub use protoquot_speclang as speclang;
